#include "ftwc/compositional.hpp"

#include <algorithm>
#include <charconv>
#include <functional>

#include "bisim/bisimulation.hpp"
#include "ftwc/components.hpp"
#include "imc/compose.hpp"
#include "support/errors.hpp"

namespace unicon::ftwc {

namespace {

std::vector<std::string> split_tuple(const std::string& name);

/// Number of non-operational components encoded in a (possibly nested)
/// state-name fragment: a plain count ("3"), the tokens "o" (operational)
/// and "d" (down), or a tuple of fragments.  Other tokens (elapse phases,
/// repair-unit states) contribute nothing.
unsigned count_down(const std::string& fragment) {
  if (!fragment.empty() && fragment.front() == '(') {
    unsigned total = 0;
    for (const std::string& part : split_tuple(fragment)) total += count_down(part);
    return total;
  }
  if (fragment == "d") return 1;
  if (!fragment.empty() && (std::isdigit(static_cast<unsigned char>(fragment[0])) != 0)) {
    unsigned value = 0;
    std::from_chars(fragment.data(), fragment.data() + fragment.size(), value);
    return value;
  }
  return 0;
}

/// Splits "(a,b,c)" at the top level.
std::vector<std::string> split_tuple(const std::string& name) {
  std::vector<std::string> parts;
  if (name.size() < 2 || name.front() != '(' || name.back() != ')') {
    throw ModelError("ftwc: unexpected composite state name: " + name);
  }
  int depth = 0;
  std::string current;
  for (std::size_t i = 1; i + 1 < name.size(); ++i) {
    const char ch = name[i];
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    if (ch == ',' && depth == 0) {
      parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  parts.push_back(std::move(current));
  return parts;
}

/// Minimizes @p m respecting the observable status (the bisimulation is
/// seeded with the @p key classes so that e.g. the zero-time instant
/// between an elapsed failure delay and the fail event does not merge an
/// operational with a down state) and renames each quotient state via the
/// key of its representative.
Imc minimize_renamed(const Imc& m, const std::function<std::string(const std::string&)>& key,
                     StageStats* stats) {
  std::vector<std::uint32_t> labels(m.num_states());
  {
    std::unordered_map<std::string, std::uint32_t> label_ids;
    for (StateId s = 0; s < m.num_states(); ++s) {
      const auto [it, inserted] =
          label_ids.emplace(key(m.state_name(s)), static_cast<std::uint32_t>(label_ids.size()));
      labels[s] = it->second;
    }
  }
  const Partition p = branching_bisimulation(m, &labels);

  std::vector<std::string> block_key(p.num_blocks);
  BitVector seen(p.num_blocks, false);
  for (StateId s = 0; s < m.num_states(); ++s) {
    const std::string k = key(m.state_name(s));
    const std::uint32_t blk = p.block_of[s];
    if (!seen[blk]) {
      seen[blk] = true;
      block_key[blk] = k;
    } else if (block_key[blk] != k) {
      throw ModelError("ftwc: bisimulation merged states with different observable status (" +
                       block_key[blk] + " vs " + k + ")");
    }
  }

  Imc q = quotient(m, p);
  std::vector<std::string> names(q.num_states());
  for (StateId s = 0; s < q.num_states(); ++s) names[s] = key(q.state_name(s));
  q = q.rename_states(std::move(names));
  if (stats != nullptr) {
    stats->states_before_minimization = m.num_states();
    stats->states = q.num_states();
    stats->interactive_transitions = q.num_interactive_transitions();
    stats->markov_transitions = q.num_markov_transitions();
  }
  return q;
}

std::string status_key(const std::string& name) {
  // Component names look like "(o,idle,done)" or already "o"/"d".
  return count_down(name) == 0 ? "o" : "d";
}

std::string count_key(const std::string& name) { return std::to_string(count_down(name)); }

}  // namespace

Config parse_config(const std::string& name, unsigned n) {
  const std::vector<std::string> parts = split_tuple(name);
  if (parts.size() != 6) {
    throw ModelError("ftwc: expected 6-tuple state name, got: " + name);
  }
  Config c;
  c.failed_left = count_down(parts[0]);
  c.failed_right = count_down(parts[1]);
  c.sw_left_up = count_down(parts[2]) == 0;
  c.sw_right_up = count_down(parts[3]) == 0;
  c.backbone_up = count_down(parts[4]) == 0;
  if (c.failed_left > n || c.failed_right > n) {
    throw ModelError("ftwc: failure count out of range in name: " + name);
  }
  return c;
}

CompositionalResult build_compositional(const Parameters& params,
                                        const CompositionalOptions& options) {
  auto actions = std::make_shared<ActionTable>();
  CompositionalResult result;

  ExploreOptions explore;
  explore.record_names = true;
  explore.max_states = options.max_states;

  auto maybe_minimize = [&](Imc m, const std::function<std::string(const std::string&)>& key,
                            const std::string& stage) {
    StageStats stats;
    stats.stage = stage;
    if (options.minimize) {
      m = minimize_renamed(m, key, &stats);
    } else {
      stats.states_before_minimization = m.num_states();
      stats.states = m.num_states();
      stats.interactive_transitions = m.num_interactive_transitions();
      stats.markov_transitions = m.num_markov_transitions();
    }
    result.stages.push_back(stats);
    return m;
  };

  // Per-class components (Fig. 3) and workstation groups.
  auto build_group = [&](Component c, unsigned copies) {
    Imc unit = component_imc(c, params, actions);
    unit = maybe_minimize(std::move(unit), status_key, std::string("component ") + tag(c));
    Imc group = unit;
    for (unsigned i = 1; i < copies; ++i) {
      Imc next = CompositionExpr::interleave(CompositionExpr::leaf(group),
                                             CompositionExpr::leaf(unit))
                     .explore(explore);
      group = maybe_minimize(std::move(next), count_key,
                             std::string("group ") + tag(c) + " x" + std::to_string(i + 1));
    }
    if (copies == 1 && options.minimize) {
      // Normalize the name of a single-component group to its count form.
      std::vector<std::string> names(group.num_states());
      for (StateId s = 0; s < group.num_states(); ++s) names[s] = count_key(group.state_name(s));
      group = group.rename_states(std::move(names));
    }
    return group;
  };

  const Imc ws_left = build_group(Component::WsLeft, params.n);
  const Imc ws_right = build_group(Component::WsRight, params.n);
  const Imc sw_left = build_group(Component::SwLeft, 1);
  const Imc sw_right = build_group(Component::SwRight, 1);
  const Imc backbone = build_group(Component::Backbone, 1);
  const Imc repair_unit = imc_from_lts(repair_unit_lts(actions));

  // Interleave the five groups, then synchronize with the repair unit on
  // every grab/release action.
  CompositionExpr all = CompositionExpr::leaf(ws_left);
  all = CompositionExpr::interleave(std::move(all), CompositionExpr::leaf(ws_right));
  all = CompositionExpr::interleave(std::move(all), CompositionExpr::leaf(sw_left));
  all = CompositionExpr::interleave(std::move(all), CompositionExpr::leaf(sw_right));
  all = CompositionExpr::interleave(std::move(all), CompositionExpr::leaf(backbone));

  std::unordered_set<Action> sync;
  for (int i = 0; i < kNumComponents; ++i) {
    const std::string t = tag(static_cast<Component>(i));
    sync.insert(actions->intern("g_" + t));
    sync.insert(actions->intern("r_" + t));
  }
  CompositionExpr system =
      CompositionExpr::parallel(std::move(all), std::move(sync), CompositionExpr::leaf(repair_unit));

  // Final exploration under the closed-system urgency assumption.
  ExploreOptions final_explore = explore;
  final_explore.urgent = true;
  result.uimc = system.explore(final_explore);

  StageStats final_stats;
  final_stats.stage = "system";
  final_stats.states = final_stats.states_before_minimization = result.uimc.num_states();
  final_stats.interactive_transitions = result.uimc.num_interactive_transitions();
  final_stats.markov_transitions = result.uimc.num_markov_transitions();
  result.stages.push_back(final_stats);

  const auto rate = result.uimc.uniform_rate(UniformityView::Closed, 1e-6);
  if (!rate) {
    throw UniformityError("ftwc: compositional model is unexpectedly non-uniform");
  }
  result.uniform_rate = *rate;

  result.goal.resize(result.uimc.num_states());
  for (StateId s = 0; s < result.uimc.num_states(); ++s) {
    result.goal[s] = !premium(parse_config(result.uimc.state_name(s), params.n), params.n);
  }
  return result;
}

}  // namespace unicon::ftwc
