// Parameters and the premium-service property of the fault-tolerant
// workstation cluster (FTWC, Sec. 5 / Fig. 1 of the paper; first studied by
// Haverkort, Hermanns and Katoen [13] and a PRISM benchmark since).
//
// Two sub-clusters of N workstations each hang off a switch; the switches
// are joined by a backbone.  Every component fails and is repaired with
// exponentially distributed delays (mean times in Fig. 1); a single repair
// unit serves one failed component at a time, and *which* failed component
// it grabs next is a nondeterministic decision.
#pragma once

#include <cstdint>
#include <string>

namespace unicon::ftwc {

/// Component classes, in the fixed order used for actions and encodings.
enum class Component : std::uint8_t { WsLeft, WsRight, SwLeft, SwRight, Backbone };
inline constexpr int kNumComponents = 5;

/// Short class tag used in action names: g_wsL, r_bb, ...
const char* tag(Component c);

struct Parameters {
  /// Workstations per sub-cluster.
  unsigned n = 4;

  // Failure rates, per hour (Fig. 1: mean times to failure 500 h for a
  // workstation, 4000 h for a switch, 5000 h for the backbone).
  double ws_fail = 1.0 / 500.0;
  double sw_fail = 1.0 / 4000.0;
  double bb_fail = 1.0 / 5000.0;

  // Repair rates, per hour (Fig. 1: mean repair times 0.5 h, 4 h, 8 h).
  double ws_repair = 2.0;
  double sw_repair = 0.25;
  double bb_repair = 0.125;

  /// Rate of the artificial high-rate repair-unit assignment races in the
  /// CTMC variant of [13] (the nondeterminism replaced "by using very high
  /// rates assigned to the decisive transitions").
  double decision_rate = 200.0;

  /// Model the explicit repair-unit release step (the r_* actions of the
  /// component LTSs in Fig. 2).  Zero-time releases chain with the next
  /// grab decision into multi-action words in the CTMDP.
  bool with_release = true;

  double fail_rate(Component c) const;
  double repair_rate(Component c) const;
};

/// A semantic FTWC configuration (used for the property and by the direct
/// generator).
struct Config {
  unsigned failed_left = 0;   // failed workstations, left sub-cluster
  unsigned failed_right = 0;  // failed workstations, right sub-cluster
  bool sw_left_up = true;
  bool sw_right_up = true;
  bool backbone_up = true;
};

/// Quality level k (the PRISM benchmark's "minimum QoS"): at least k
/// workstations operational and mutually connected — either k inside one
/// sub-cluster behind its working switch, or k pooled across both
/// sub-clusters via both switches and the backbone.
bool quality(const Config& c, unsigned n, unsigned k);

/// Premium quality (Sec. 5): quality at level k = N.
bool premium(const Config& c, unsigned n);

}  // namespace unicon::ftwc
