// Direct FTWC state-space generation — the paper's PRISM route for large N
// (Sec. 5 "Technicalities"): the semantic product states are enumerated
// without building intermediate compositions, the repair-unit assignment is
// kept as genuine nondeterminism (interactive grab transitions), and the
// closed IMC is made uniform by Jensen self-loop padding at the maximal
// exit rate ("equivalent models ... up to uniformity").
#pragma once

#include <vector>

#include "ftwc/parameters.hpp"
#include "imc/imc.hpp"
#include "support/bit_vector.hpp"

namespace unicon::ftwc {

struct DirectResult {
  /// Closed *uniform* IMC of the FTWC (urgency already applied: interactive
  /// states carry no Markov transitions).
  Imc uimc;
  /// Goal mask per state: premium service not guaranteed.
  BitVector goal;
  /// Semantic configuration per state (for property evaluation and tests).
  std::vector<Config> configs;
  /// The uniform rate E (maximal exit rate before padding).
  double uniform_rate = 0.0;
};

/// Builds the FTWC uIMC by reachable-state enumeration.
/// With params.with_release, finishing a repair leads to a release state
/// whose r_<c> action chains with the next grab decision into action words
/// of the transformed CTMDP.
DirectResult build_direct(const Parameters& params, bool record_names = false);

}  // namespace unicon::ftwc
