#include "ftwc/components.hpp"

#include <string>

#include "bisim/bisimulation.hpp"

namespace unicon::ftwc {

Lts component_lts(Component c, const std::shared_ptr<ActionTable>& actions) {
  LtsBuilder b(actions);
  const StateId up = b.add_state("o");
  const StateId down = b.add_state("d");
  const StateId in_repair = b.add_state("d");
  const StateId repaired = b.add_state("o");
  b.set_initial(up);
  const std::string t = tag(c);
  b.add_transition(up, "fail", down);
  b.add_transition(down, "g_" + t, in_repair);
  b.add_transition(in_repair, "repair", repaired);
  b.add_transition(repaired, "r_" + t, up);
  return b.build();
}

std::vector<TimeConstraint> component_constraints(Component c, const Parameters& params) {
  const std::string t = tag(c);
  std::vector<TimeConstraint> constraints;
  // Failure delay: runs from system start, re-armed once the repair unit
  // releases the freshly repaired component.
  constraints.emplace_back(PhaseType::exponential(params.fail_rate(c)), "fail", "r_" + t,
                           /*running=*/true);
  // Repair delay: armed when the repair unit grabs the component.
  constraints.emplace_back(PhaseType::exponential(params.repair_rate(c)), "repair", "g_" + t,
                           /*running=*/false);
  return constraints;
}

Imc component_imc(Component c, const Parameters& params,
                  const std::shared_ptr<ActionTable>& actions) {
  const Lts lts = component_lts(c, actions);
  ExploreOptions options;
  options.record_names = true;
  Imc composed = apply_time_constraints(lts, component_constraints(c, params), options);
  std::unordered_set<Action> hidden{actions->intern("fail"), actions->intern("repair")};
  return composed.hide(hidden);
}

Lts repair_unit_lts(const std::shared_ptr<ActionTable>& actions) {
  LtsBuilder b(actions);
  const StateId idle = b.add_state("idle");
  b.set_initial(idle);
  for (int i = 0; i < kNumComponents; ++i) {
    const auto c = static_cast<Component>(i);
    const std::string t = tag(c);
    const StateId busy = b.add_state(t);
    b.add_transition(idle, "g_" + t, busy);
    b.add_transition(busy, "r_" + t, idle);
  }
  return b.build();
}

}  // namespace unicon::ftwc
