// The CTMC approximation of the FTWC used by earlier studies [13, 18]:
// the nondeterministic repair-unit assignment is replaced by a race of
// very fast exponential "decision" transitions (rate Gamma).  Figure 4 of
// the paper compares this model's time-bounded reachability against the
// faithful CTMDP worst case and finds the CTMC *over*estimates — the
// artificial races admit low-probability paths that do not exist under the
// nondeterministic interpretation.
#pragma once

#include <vector>

#include "ctmc/ctmc.hpp"
#include "ftwc/parameters.hpp"
#include "support/bit_vector.hpp"

namespace unicon::ftwc {

struct CtmcResult {
  Ctmc ctmc;
  /// Goal mask per state: premium service not guaranteed.
  BitVector goal;
  std::vector<Config> configs;
};

/// Builds the Gamma-race CTMC (params.decision_rate is Gamma).
CtmcResult build_ctmc_variant(const Parameters& params);

}  // namespace unicon::ftwc
