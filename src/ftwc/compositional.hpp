// Compositional FTWC construction (Sec. 5 of the paper): build every
// component as LTS + time constraints (uniform by construction), minimize
// intermediate results with stochastic branching bisimulation, interleave
// the component groups and synchronize with the repair unit.
//
// This is the paper's CADP/SVL trajectory realized with the library's own
// composition engine and minimizer.  The symmetric workstations collapse
// under bisimulation into counting abstractions, which is what makes the
// route feasible; the explored intermediate sizes are reported per stage
// (the paper's "Technicalities" paragraph).
#pragma once

#include <string>
#include <vector>

#include "ftwc/parameters.hpp"
#include "imc/imc.hpp"
#include "support/bit_vector.hpp"

namespace unicon::ftwc {

struct CompositionalOptions {
  /// Minimize after every composition step (the paper's strategy).  Without
  /// it the intermediate state spaces explode quickly.
  bool minimize = true;
  /// Abort when an exploration exceeds this many states.
  std::size_t max_states = 5'000'000;
};

struct StageStats {
  std::string stage;
  std::size_t states = 0;
  std::size_t interactive_transitions = 0;
  std::size_t markov_transitions = 0;
  std::size_t states_before_minimization = 0;
};

struct CompositionalResult {
  /// The closed FTWC uIMC (urgency applied during the final exploration).
  Imc uimc;
  /// Goal mask: premium service NOT guaranteed.
  BitVector goal;
  /// Uniform rate (closed view) — the sum of the component elapse rates.
  double uniform_rate = 0.0;
  std::vector<StageStats> stages;
};

CompositionalResult build_compositional(const Parameters& params,
                                        const CompositionalOptions& options = {});

/// Parses a composite state name produced by build_compositional into a
/// Config; exposed for tests.
Config parse_config(const std::string& name, unsigned n);

}  // namespace unicon::ftwc
