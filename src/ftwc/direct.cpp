#include "ftwc/direct.hpp"

#include <deque>
#include <string>
#include <unordered_map>

#include "support/errors.hpp"

namespace unicon::ftwc {

namespace {

/// Repair-unit status: idle, repairing component class c, or holding a
/// freshly repaired c while the release handshake is pending.
struct RuStatus {
  enum Kind : std::uint8_t { Idle, Busy, Releasing } kind = Idle;
  Component component = Component::WsLeft;
};

struct SemState {
  Config config;
  RuStatus ru;
};

std::uint64_t encode(const SemState& s) {
  std::uint64_t k = s.config.failed_left;
  k = (k << 16) | s.config.failed_right;
  k = (k << 1) | (s.config.sw_left_up ? 1 : 0);
  k = (k << 1) | (s.config.sw_right_up ? 1 : 0);
  k = (k << 1) | (s.config.backbone_up ? 1 : 0);
  k = (k << 2) | static_cast<std::uint64_t>(s.ru.kind);
  k = (k << 3) | static_cast<std::uint64_t>(s.ru.component);
  return k;
}

bool class_failed(const Config& c, Component comp, unsigned /*n*/) {
  switch (comp) {
    case Component::WsLeft: return c.failed_left > 0;
    case Component::WsRight: return c.failed_right > 0;
    case Component::SwLeft: return !c.sw_left_up;
    case Component::SwRight: return !c.sw_right_up;
    case Component::Backbone: return !c.backbone_up;
  }
  return false;
}

void repair_one(Config& c, Component comp) {
  switch (comp) {
    case Component::WsLeft: --c.failed_left; break;
    case Component::WsRight: --c.failed_right; break;
    case Component::SwLeft: c.sw_left_up = true; break;
    case Component::SwRight: c.sw_right_up = true; break;
    case Component::Backbone: c.backbone_up = true; break;
  }
}

std::string name_of(const SemState& s) {
  std::string name = "(" + std::to_string(s.config.failed_left) + "," +
                     std::to_string(s.config.failed_right) + "," +
                     (s.config.sw_left_up ? "o" : "d") + "," +
                     (s.config.sw_right_up ? "o" : "d") + "," +
                     (s.config.backbone_up ? "o" : "d") + ",";
  switch (s.ru.kind) {
    case RuStatus::Idle: name += "idle"; break;
    case RuStatus::Busy: name += std::string("busy_") + tag(s.ru.component); break;
    case RuStatus::Releasing: name += std::string("rel_") + tag(s.ru.component); break;
  }
  return name + ")";
}

}  // namespace

DirectResult build_direct(const Parameters& params, bool record_names) {
  const unsigned n = params.n;
  if (n == 0) throw ModelError("ftwc: n must be positive");

  ImcBuilder builder;
  Action grab[kNumComponents];
  Action release[kNumComponents];
  for (int i = 0; i < kNumComponents; ++i) {
    const std::string t = tag(static_cast<Component>(i));
    grab[i] = builder.intern("g_" + t);
    release[i] = builder.intern("r_" + t);
  }

  DirectResult result;
  std::unordered_map<std::uint64_t, StateId> ids;
  std::deque<SemState> frontier;

  auto intern_state = [&](const SemState& s) -> StateId {
    const std::uint64_t key = encode(s);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    const StateId id = builder.add_state(record_names ? name_of(s) : std::string());
    ids.emplace(key, id);
    result.configs.push_back(s.config);
    result.goal.push_back(!premium(s.config, n));
    frontier.push_back(s);
    return id;
  };

  const SemState initial{};  // everything up, repair unit idle
  builder.set_initial(intern_state(initial));

  while (!frontier.empty()) {
    const SemState s = frontier.front();
    frontier.pop_front();
    const StateId from = ids.at(encode(s));

    // --- Interactive states (urgency: no Markov transitions) ------------
    if (s.ru.kind == RuStatus::Releasing) {
      SemState next = s;
      next.ru = RuStatus{RuStatus::Idle, Component::WsLeft};
      builder.add_interactive(from, release[static_cast<int>(s.ru.component)],
                              intern_state(next));
      continue;
    }
    bool any_failed = false;
    for (int i = 0; i < kNumComponents; ++i) {
      any_failed = any_failed || class_failed(s.config, static_cast<Component>(i), n);
    }
    if (s.ru.kind == RuStatus::Idle && any_failed) {
      // The nondeterministic repair-unit assignment.
      for (int i = 0; i < kNumComponents; ++i) {
        const auto c = static_cast<Component>(i);
        if (!class_failed(s.config, c, n)) continue;
        SemState next = s;
        next.ru = RuStatus{RuStatus::Busy, c};
        builder.add_interactive(from, grab[i], intern_state(next));
      }
      continue;
    }

    // --- Markov states ---------------------------------------------------
    // Failures of operational components.
    if (s.config.failed_left < n) {
      SemState next = s;
      ++next.config.failed_left;
      builder.add_markov(from, (n - s.config.failed_left) * params.ws_fail, intern_state(next));
    }
    if (s.config.failed_right < n) {
      SemState next = s;
      ++next.config.failed_right;
      builder.add_markov(from, (n - s.config.failed_right) * params.ws_fail, intern_state(next));
    }
    if (s.config.sw_left_up) {
      SemState next = s;
      next.config.sw_left_up = false;
      builder.add_markov(from, params.sw_fail, intern_state(next));
    }
    if (s.config.sw_right_up) {
      SemState next = s;
      next.config.sw_right_up = false;
      builder.add_markov(from, params.sw_fail, intern_state(next));
    }
    if (s.config.backbone_up) {
      SemState next = s;
      next.config.backbone_up = false;
      builder.add_markov(from, params.bb_fail, intern_state(next));
    }
    // Repair completion.
    if (s.ru.kind == RuStatus::Busy) {
      SemState next = s;
      repair_one(next.config, s.ru.component);
      next.ru = params.with_release ? RuStatus{RuStatus::Releasing, s.ru.component}
                                    : RuStatus{RuStatus::Idle, Component::WsLeft};
      builder.add_markov(from, params.repair_rate(s.ru.component), intern_state(next));
    }
  }

  Imc closed = builder.build();
  const Imc uniform = closed.uniformize(0.0, UniformityView::Closed);
  const auto rate = uniform.uniform_rate(UniformityView::Closed, 1e-9);
  if (!rate) throw UniformityError("ftwc: uniformization failed unexpectedly");
  result.uniform_rate = *rate;
  result.uimc = uniform;
  return result;
}

}  // namespace unicon::ftwc
