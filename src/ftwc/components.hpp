// FTWC component models: the LTSs of Fig. 2 and the time-constrained
// component IMCs of Fig. 3.
#pragma once

#include <memory>
#include <vector>

#include "core/time_constraint.hpp"
#include "ftwc/parameters.hpp"
#include "imc/imc.hpp"
#include "lts/lts.hpp"

namespace unicon::ftwc {

/// The LTS of one repairable component of class @p c (Fig. 2, right):
///   up --fail--> down --g_<c>--> in_repair --repair--> repaired --r_<c>--> up.
/// Actions fail/repair are local (to be constrained and hidden), g_*/r_*
/// synchronize with the repair unit.  State names "o"/"d" encode whether
/// the component is operational, which the property evaluation reads back.
Lts component_lts(Component c, const std::shared_ptr<ActionTable>& actions);

/// The time constraints of a component: the failure delay (running from
/// system start, re-armed by the release) and the repair delay (armed by
/// the grab) — Fig. 3 left.
std::vector<TimeConstraint> component_constraints(Component c, const Parameters& params);

/// Fully time-constrained component IMC with fail/repair hidden (Fig. 3
/// right).  Uniform by construction with rate fail_rate(c) + repair_rate(c).
Imc component_imc(Component c, const Parameters& params,
                  const std::shared_ptr<ActionTable>& actions);

/// The repair unit LTS (Fig. 2, left): from idle, grab any of the five
/// component classes (g_<c>); the matching release r_<c> returns to idle.
Lts repair_unit_lts(const std::shared_ptr<ActionTable>& actions);

}  // namespace unicon::ftwc
