#include "support/run_guard.hpp"

#include <cstdlib>
#include <new>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace unicon {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::Converged: return "converged";
    case RunStatus::DeadlineExceeded: return "deadline-exceeded";
    case RunStatus::MemoryBudgetExceeded: return "mem-budget-exceeded";
    case RunStatus::Cancelled: return "cancelled";
  }
  return "converged";
}

ErrorCode run_status_code(RunStatus status) {
  switch (status) {
    case RunStatus::Converged: return ErrorCode::Ok;
    case RunStatus::DeadlineExceeded: return ErrorCode::Deadline;
    case RunStatus::MemoryBudgetExceeded: return ErrorCode::MemoryBudget;
    case RunStatus::Cancelled: return ErrorCode::Cancelled;
  }
  return ErrorCode::Internal;
}

void RunGuard::set_deadline(double seconds) {
  if (seconds <= 0.0) {
    has_deadline_ = false;
    return;
  }
  has_deadline_ = true;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
}

void RunGuard::set_memory_budget(std::uint64_t bytes) { memory_budget_ = bytes; }

void RunGuard::request_cancel() {
  // Async-signal-safe: two lock-free stores, no locks, no allocation.
  cancel_requested_.store(true, std::memory_order_relaxed);
  stop_.store(true, std::memory_order_release);
  int expected = static_cast<int>(RunStatus::Converged);
  status_.compare_exchange_strong(expected, static_cast<int>(RunStatus::Cancelled),
                                  std::memory_order_acq_rel);
}

void RunGuard::cancel_after_polls(std::uint64_t n) { cancel_at_poll_ = n; }

void RunGuard::set_checkpoint(CheckpointFn fn, std::uint64_t stride) {
  checkpoint_fn_ = std::move(fn);
  checkpoint_stride_ = stride > 0 ? stride : 1;
}

void RunGuard::trip(RunStatus status) {
  int expected = static_cast<int>(RunStatus::Converged);
  status_.compare_exchange_strong(expected, static_cast<int>(status),
                                  std::memory_order_acq_rel);
  stop_.store(true, std::memory_order_release);
}

bool RunGuard::violated_now() {
  if (cancel_requested_.load(std::memory_order_relaxed)) {
    trip(RunStatus::Cancelled);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    trip(RunStatus::DeadlineExceeded);
    return true;
  }
  if (memory_budget_ != 0 &&
      live_bytes_.load(std::memory_order_relaxed) >
          static_cast<std::int64_t>(memory_budget_)) {
    trip(RunStatus::MemoryBudgetExceeded);
    return true;
  }
  return false;
}

RunStatus RunGuard::poll() {
  const std::uint64_t n = poll_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cancel_at_poll_ != 0 && n >= cancel_at_poll_) trip(RunStatus::Cancelled);
  if (!stop_.load(std::memory_order_acquire)) violated_now();
  return status();
}

bool RunGuard::should_abort_sweep() {
  if (stop_.load(std::memory_order_relaxed)) return true;
  // Evaluating the deadline needs a clock read, which can be a full syscall
  // on some hosts.  Decimate it per thread so the common probe is a single
  // relaxed load; a violation is still observed within 8 probes (~32k
  // states), far inside one sweep.  An aborted sweep discards its partial
  // output entirely, so the probe cadence never affects results.
  thread_local std::uint32_t decimate = 0;
  if ((++decimate & 7u) != 0) return false;
  return violated_now();
}

void RunGuard::check(const char* stage) {
  const RunStatus st = poll();
  if (st == RunStatus::Converged) return;
  throw BudgetError(run_status_code(st),
                    std::string(stage) + ": " + run_status_name(st));
}

void RunGuard::checkpoint(const char* stage, std::uint64_t step, std::uint64_t planned,
                          double residual_bound, std::span<double> values) {
  if (!checkpoint_fn_) return;
  if (checkpoint_stride_ > 1 && step % checkpoint_stride_ != 0) return;
  RunCheckpoint cp;
  cp.stage = stage;
  cp.step = step;
  cp.planned = planned;
  cp.residual_bound = residual_bound;
  cp.values = values;
  checkpoint_fn_(cp);
}

// ---------------------------------------------------------------------------
// Global allocation accounting.
//
// The replaced operator new/delete below consult one process-global guard
// pointer.  When no MemoryAccountingScope is alive the hook is a single
// relaxed load and branch; otherwise net live bytes (glibc: the true usable
// size of each block, elsewhere: the requested size, with frees of
// unknown-size blocks uncounted) are charged to the guard, and the armed
// Nth-allocation fault (if any) is evaluated *before* the underlying
// malloc, so the failing call never allocates.
// ---------------------------------------------------------------------------

namespace {

std::atomic<RunGuard*> g_mem_guard{nullptr};
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_fail_at{0};

/// True only on the thread that constructed the active scope.  Fault
/// counting and firing are confined to this thread: byte accounting stays
/// process-wide (a budget bounds the whole solve), but the armed Nth
/// allocation must never fail an allocation made by an unrelated thread —
/// in a multi-worker server a concurrent clean request would otherwise
/// absorb another request's injected bad_alloc.
thread_local bool t_scope_owner = false;

inline std::size_t block_size(void* p, std::size_t requested) {
#if defined(__GLIBC__)
  (void)requested;
  return malloc_usable_size(p);
#else
  return requested;
#endif
}

/// Pre-malloc hook: counts the allocation and fires the armed fault.
/// Returns false when the allocation must fail (nothrow paths).  Only the
/// scope-owning thread counts toward (and can trip) the armed fault, so
/// the Nth allocation is deterministic for that thread regardless of what
/// other threads allocate concurrently.
inline bool account_before(RunGuard*& guard) {
  guard = g_mem_guard.load(std::memory_order_relaxed);
  if (guard == nullptr || !t_scope_owner) return true;
  const std::uint64_t n = g_alloc_count.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t fail_at = g_fail_at.load(std::memory_order_relaxed);
  return fail_at == 0 || n != fail_at;
}

inline void account_after(RunGuard* guard, void* p, std::size_t requested) {
  if (guard != nullptr && p != nullptr) guard->note_alloc(block_size(p, requested));
}

inline void* guarded_alloc(std::size_t size, std::size_t align, bool nothrow) {
  RunGuard* guard = nullptr;
  if (!account_before(guard)) {
    if (nothrow) return nullptr;
    throw std::bad_alloc();
  }
  const std::size_t request = size > 0 ? size : 1;
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(request);
  } else if (posix_memalign(&p, align, request) != 0) {
    p = nullptr;
  }
  if (p == nullptr) {
    if (nothrow) return nullptr;
    throw std::bad_alloc();
  }
  account_after(guard, p, request);
  return p;
}

inline void guarded_free(void* p, std::size_t requested) {
  if (p == nullptr) return;
  RunGuard* guard = g_mem_guard.load(std::memory_order_relaxed);
  if (guard != nullptr) {
#if defined(__GLIBC__)
    guard->note_free(block_size(p, requested));
#else
    if (requested > 0) guard->note_free(requested);
#endif
  }
  std::free(p);
}

}  // namespace

MemoryAccountingScope::MemoryAccountingScope(RunGuard& guard) {
  RunGuard* expected = nullptr;
  if (!g_mem_guard.compare_exchange_strong(expected, &guard, std::memory_order_acq_rel)) {
    // The CAS comes first so a rejected nested scope leaves the active
    // scope's allocation counter untouched.
    throw ModelError("MemoryAccountingScope: another scope is already active");
  }
  g_alloc_count.store(0, std::memory_order_relaxed);
  t_scope_owner = true;
}

MemoryAccountingScope::~MemoryAccountingScope() {
  t_scope_owner = false;
  g_mem_guard.store(nullptr, std::memory_order_release);
  g_fail_at.store(0, std::memory_order_relaxed);
  g_alloc_count.store(0, std::memory_order_relaxed);
}

void arm_allocation_failure(std::uint64_t nth) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_fail_at.store(nth, std::memory_order_relaxed);
}

std::uint64_t accounted_allocations() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace unicon

// ---------------------------------------------------------------------------
// Replaced global allocation functions.  All forms funnel into
// guarded_alloc/guarded_free so accounting and fault injection see every
// C++ heap allocation in the process.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  return unicon::guarded_alloc(size, alignof(std::max_align_t), /*nothrow=*/false);
}
void* operator new[](std::size_t size) {
  return unicon::guarded_alloc(size, alignof(std::max_align_t), /*nothrow=*/false);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return unicon::guarded_alloc(size, alignof(std::max_align_t), /*nothrow=*/true);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return unicon::guarded_alloc(size, alignof(std::max_align_t), /*nothrow=*/true);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return unicon::guarded_alloc(size, static_cast<std::size_t>(align), /*nothrow=*/false);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return unicon::guarded_alloc(size, static_cast<std::size_t>(align), /*nothrow=*/false);
}
void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return unicon::guarded_alloc(size, static_cast<std::size_t>(align), /*nothrow=*/true);
}
void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return unicon::guarded_alloc(size, static_cast<std::size_t>(align), /*nothrow=*/true);
}

void operator delete(void* p) noexcept { unicon::guarded_free(p, 0); }
void operator delete[](void* p) noexcept { unicon::guarded_free(p, 0); }
void operator delete(void* p, std::size_t size) noexcept { unicon::guarded_free(p, size); }
void operator delete[](void* p, std::size_t size) noexcept { unicon::guarded_free(p, size); }
void operator delete(void* p, const std::nothrow_t&) noexcept { unicon::guarded_free(p, 0); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { unicon::guarded_free(p, 0); }
void operator delete(void* p, std::align_val_t) noexcept { unicon::guarded_free(p, 0); }
void operator delete[](void* p, std::align_val_t) noexcept { unicon::guarded_free(p, 0); }
void operator delete(void* p, std::size_t size, std::align_val_t) noexcept {
  unicon::guarded_free(p, size);
}
void operator delete[](void* p, std::size_t size, std::align_val_t) noexcept {
  unicon::guarded_free(p, size);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  unicon::guarded_free(p, 0);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  unicon::guarded_free(p, 0);
}
