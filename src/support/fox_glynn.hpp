// Poisson probability windows for uniformization-based transient analysis.
//
// Both the CTMC transient solver and the uCTMDP timed-reachability algorithm
// weight step distributions with Poisson probabilities
//     psi(n, lambda) = e^{-lambda} lambda^n / n!
// where lambda = E * t.  Following Fox & Glynn [9] the series is truncated to
// a window [left, right] whose complementary mass is below a requested
// epsilon, and only the window weights are materialized.
//
// This implementation computes the *optimal* (tightest) truncation window by
// scanning the probability mass outward from the mode with the stable
// ratio recurrence psi(n+1) = psi(n) * lambda / (n+1), anchored at the mode
// in log space.  The original Fox-Glynn corollary bounds are conservative;
// with the optimal window the iteration counts reported by the benchmarks
// are slight *under*-estimates of the paper's Table 1 counts at equal
// precision (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <vector>

namespace unicon {

/// A truncated Poisson distribution: weights()[i] approximates
/// psi(left + i, lambda) and the window mass is >= 1 - epsilon.
class PoissonWindow {
 public:
  /// Computes the window for parameter @p lambda >= 0 with total truncation
  /// error at most @p epsilon (split between the two tails).
  ///
  /// Throws ModelError for invalid arguments, and NumericError when the
  /// requested epsilon is below the accuracy floor reachable in double
  /// precision (huge lambda, tiny epsilon: the frontier probabilities
  /// underflow before the window mass reaches 1 - epsilon).  The message
  /// reports the achievable floor.
  static PoissonWindow compute(double lambda, double epsilon);

  std::uint64_t left() const { return left_; }
  std::uint64_t right() const { return right_; }
  double lambda() const { return lambda_; }
  double epsilon() const { return epsilon_; }

  /// psi(n, lambda), zero outside the window.
  double psi(std::uint64_t n) const {
    if (n < left_ || n > right_) return 0.0;
    return weights_[n - left_];
  }

  /// Mass inside the window (>= 1 - epsilon).
  double total_mass() const { return total_mass_; }

  /// Tail mass sum_{i >= n} psi(i) restricted to the window: psi() is zero
  /// outside [left, right], so tail_mass(n) == total_mass() for every
  /// n <= left (the true Poisson mass of [n, left) was truncated away, with
  /// error bounded by epsilon) and 0 for n > right.  Consistent with
  /// total_mass() by construction; useful for deciding when the remaining
  /// weights cannot influence a result beyond the requested precision.
  double tail_mass(std::uint64_t n) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::uint64_t left_ = 0;
  std::uint64_t right_ = 0;
  double lambda_ = 0.0;
  double epsilon_ = 0.0;
  double total_mass_ = 0.0;
  std::vector<double> weights_;       // psi(left..right)
  std::vector<double> suffix_mass_;   // suffix sums of weights_
};

/// Reference implementation: psi(n, lambda) via lgamma, used for testing.
double poisson_pmf(std::uint64_t n, double lambda);

}  // namespace unicon
