// Minimal JSON value type shared by the analysis-server wire protocol and
// the on-disk scheduler artifacts (unicon-scheduler-v1).
//
// The server speaks newline-delimited JSON (one request or response object
// per line, see server.hpp), so it needs a parser as well as the emitter
// the telemetry layer already has.  This is deliberately a small, strict
// subset implementation rather than a dependency: UTF-8 pass-through,
// doubles only (integers that fit exactly are re-emitted without a decimal
// point), objects keep *insertion order* on output so responses serialize
// deterministically — the golden-session replay test diffs raw bytes.
//
// Parsing throws ParseError (stable code 13) with a byte offset, which the
// session loop maps onto the same error schema unicon_check --json-errors
// uses.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace unicon {

class Json;

/// Ordered key -> value map (duplicate keys keep the first occurrence on
/// lookup; parsing rejects duplicates outright).
using JsonObject = std::vector<std::pair<std::string, Json>>;
using JsonArray = std::vector<Json>;

class Json {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double v) : type_(Type::Number), number_(v) {}
  Json(int v) : type_(Type::Number), number_(v) {}
  Json(unsigned v) : type_(Type::Number), number_(v) {}
  Json(std::uint64_t v) : type_(Type::Number), number_(static_cast<double>(v)) {}
  Json(std::int64_t v) : type_(Type::Number), number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::String), string_(s) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::Array), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::Object), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw ParseError on a type mismatch (the session loop
  /// turns that into a per-request "parse" error response).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object field lookup; null when absent (or when this is not an object).
  const Json* find(const std::string& key) const;

  /// Convenience getters with defaults, for optional request fields.
  bool get_bool(const std::string& key, bool fallback) const;
  double get_number(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;

  /// Appends a field (object only; starts one when null).
  Json& set(std::string key, Json value);

  /// Compact single-line serialization (no trailing newline).  Numbers
  /// that are exact integers with |v| < 2^53 print without a decimal
  /// point, everything else via %.17g round-trip formatting.
  std::string dump() const;

  /// Strict parse of exactly one JSON value spanning the whole input
  /// (trailing whitespace allowed).  Throws ParseError.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace unicon
