// Compressed-sparse-row matrices over double values.
//
// The transition relations of all models in this library are stored in CSR
// form: a row-pointer array, a column array and a value array.  This mirrors
// the storage strategy of the paper's implementation ("the transition
// relation is stored as sparse matrices storing action and rate information
// separately", Sec. 4.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace unicon {

/// One (column, value) entry of a sparse row.
struct SparseEntry {
  std::uint32_t col = 0;
  double value = 0.0;

  friend bool operator==(const SparseEntry&, const SparseEntry&) = default;
};

class CsrBuilder;

/// An immutable CSR matrix.  Rows are contiguous spans of SparseEntry,
/// sorted by column with duplicate columns merged (values summed).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  std::size_t rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  std::size_t entries() const { return entries_.size(); }

  /// Entries of row @p r.
  std::span<const SparseEntry> row(std::size_t r) const {
    return std::span<const SparseEntry>(entries_.data() + row_ptr_[r],
                                        entries_.data() + row_ptr_[r + 1]);
  }

  /// Sum of the values in row @p r.
  double row_sum(std::size_t r) const;

  /// y = A * x  (sizes must match; y is overwritten).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = A^T * x.
  void multiply_transposed(std::span<const double> x, std::span<double> y) const;

  /// Approximate heap footprint in bytes.
  std::size_t memory_bytes() const {
    return row_ptr_.size() * sizeof(std::uint64_t) + entries_.size() * sizeof(SparseEntry);
  }

 private:
  friend class CsrBuilder;
  std::vector<std::uint64_t> row_ptr_;   // size rows()+1
  std::vector<SparseEntry> entries_;
};

/// Incremental builder for CsrMatrix.  Entries may be added in any order;
/// finish() sorts rows, merges duplicate columns and returns the matrix.
class CsrBuilder {
 public:
  /// Creates a builder for a matrix with @p rows rows.
  explicit CsrBuilder(std::size_t rows = 0) : rows_(rows) {}

  /// Ensures the matrix has at least @p rows rows.
  void reserve_rows(std::size_t rows) { rows_ = rows > rows_ ? rows : rows_; }

  /// Adds @p value at (@p row, @p col); duplicate coordinates are summed.
  void add(std::uint32_t row, std::uint32_t col, double value);

  std::size_t pending_entries() const { return triplets_.size(); }

  /// Builds the matrix and resets the builder.
  CsrMatrix finish();

 private:
  struct Triplet {
    std::uint32_t row;
    std::uint32_t col;
    double value;
  };
  std::size_t rows_ = 0;
  std::vector<Triplet> triplets_;
};

}  // namespace unicon
