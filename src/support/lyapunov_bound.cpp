#include "support/lyapunov_bound.hpp"

#include "support/errors.hpp"

namespace unicon {

const char* truncation_name(Truncation mode) {
  switch (mode) {
    case Truncation::Auto:
      return "auto";
    case Truncation::FoxGlynn:
      return "fox-glynn";
    case Truncation::Lyapunov:
      return "lyapunov";
  }
  return "auto";
}

Truncation parse_truncation(const std::string& name) {
  if (name == "auto") return Truncation::Auto;
  if (name == "fox-glynn") return Truncation::FoxGlynn;
  if (name == "lyapunov") return Truncation::Lyapunov;
  throw ModelError("unknown truncation '" + name + "' (expected auto, fox-glynn or lyapunov)");
}

TruncationPlan plan_truncation(Truncation requested, double lambda, double epsilon) {
  TruncationPlan plan;
  plan.window = PoissonWindow::compute(lambda, epsilon);
  plan.fox_glynn_left = plan.window.left();
  plan.fox_glynn_right = plan.window.right();
  const std::uint64_t engage_left =
      requested == Truncation::Lyapunov ? 1 : kLyapunovAutoEngageLeft;
  const bool engage = requested != Truncation::FoxGlynn && plan.window.left() > engage_left;
  if (!engage) {
    plan.resolved = Truncation::FoxGlynn;
    plan.window_epsilon = epsilon;
    plan.stop_epsilon = 0.0;
    return plan;
  }
  plan.resolved = Truncation::Lyapunov;
  plan.window_epsilon = epsilon / 2.0;
  plan.stop_epsilon = epsilon / 2.0;
  plan.window = PoissonWindow::compute(lambda, plan.window_epsilon);
  return plan;
}

}  // namespace unicon
