// Backend resolution plus the portable striped-lane kernels.
//
// Compiled with -ffp-contract=off (see src/support/CMakeLists.txt): the
// bit-identity contract between `simd` and `simd-portable` forbids fusing
// the per-lane multiply-add into an FMA, which rounds once where the AVX2
// kernel (which deliberately uses separate mul/add intrinsics) rounds
// twice.

#include "support/backend.hpp"

#include <cstdlib>

#include "support/errors.hpp"

namespace unicon {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::Auto: return "auto";
    case Backend::Serial: return "serial";
    case Backend::Simd: return "simd";
    case Backend::SimdPortable: return "simd-portable";
  }
  return "auto";
}

Backend parse_backend(const std::string& name) {
  if (name == "auto") return Backend::Auto;
  if (name == "serial") return Backend::Serial;
  if (name == "simd") return Backend::Simd;
  if (name == "simd-portable" || name == "portable") return Backend::SimdPortable;
  throw ModelError("unknown backend '" + name +
                   "' (valid: auto, serial, simd, simd-portable)");
}

Backend resolve_backend(Backend requested) {
  if (requested != Backend::Auto) return requested;
  const char* env = std::getenv("UNICON_BACKEND");
  if (env != nullptr && *env != '\0') {
    const Backend from_env = parse_backend(env);
    // UNICON_BACKEND=auto means "no override", not infinite recursion.
    if (from_env != Backend::Auto) return from_env;
  }
  // Serial stays the default: it is bit-identical to the pre-backend
  // solver, so existing results (and the tier-1 expectations pinned on
  // them) are unaffected unless a backend is asked for explicitly.
  return Backend::Serial;
}

bool cpu_supports_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool simd_uses_avx2() { return avx2_kernel_ops() != nullptr && cpu_supports_avx2(); }

namespace portable {

/// Striped four-lane dot, the scalar mirror of the AVX2 kernel: lane l of a
/// group of four accumulates entry 4m + l, the lanes combine as
/// (a0 + a2) + (a1 + a3) — exactly the horizontal sum the AVX2 kernel
/// performs on its 256-bit accumulator — and the tail runs sequentially in
/// both.  With contraction off, every operation here has a one-to-one
/// bit-equal counterpart in the vector kernel.
inline double dot_entries(const double* prob, const std::uint32_t* col, const double* q,
                          std::uint64_t first, std::uint64_t last) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::uint64_t j = first;
  for (; j + 4 <= last; j += 4) {
    a0 += prob[j] * q[col[j]];
    a1 += prob[j + 1] * q[col[j + 1]];
    a2 += prob[j + 2] * q[col[j + 2]];
    a3 += prob[j + 3] * q[col[j + 3]];
  }
  double acc = (a0 + a2) + (a1 + a3);
  for (; j < last; ++j) acc += prob[j] * q[col[j]];
  return acc;
}

#include "support/backend_kernels.inl"

const KernelOps kOps = {"simd-portable", &relax_rows, &choice_rows, &gather_rows};

}  // namespace portable

const KernelOps& kernel_ops(Backend resolved) {
  switch (resolved) {
    case Backend::Simd: {
      const KernelOps* avx2 = avx2_kernel_ops();
      if (avx2 != nullptr && cpu_supports_avx2()) return *avx2;
      return portable::kOps;
    }
    case Backend::SimdPortable:
      return portable::kOps;
    case Backend::Auto:
    case Backend::Serial:
      break;
  }
  throw ModelError(std::string("kernel_ops: backend '") + backend_name(resolved) +
                   "' has no kernel table (serial is open-coded in the solvers)");
}

}  // namespace unicon
