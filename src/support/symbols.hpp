// Interned action names and action words.
//
// Actions label interactive transitions of LTSs, IMCs and CTMDPs.  The
// distinguished internal action tau always has id 0.  Words over
// Act+_{\tau} u {tau} label the transitions produced by the
// interactive-alternating transformation step (Sec. 4.1, step 3); they are
// interned in a WordTable so that CTMDP transitions carry a compact id.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace unicon {

/// Id of an interned action name.
using Action = std::uint32_t;

/// The distinguished internal action.
inline constexpr Action kTau = 0;

/// Id of an interned action word.
using WordId = std::uint32_t;

/// Id of a state in any of the transition-system models.
using StateId = std::uint32_t;

inline constexpr StateId kNoState = static_cast<StateId>(-1);

/// Bidirectional map between action names and dense ids.  The table is
/// append-only; id 0 is pre-interned as "tau".
class ActionTable {
 public:
  ActionTable();

  /// Interns @p name, returning its id (existing id if already interned).
  Action intern(std::string_view name);

  /// Returns the id of @p name or throws ModelError if unknown.
  Action id(std::string_view name) const;

  /// Returns true iff @p name has been interned.
  bool contains(std::string_view name) const;

  /// Returns the name of action @p a.
  const std::string& name(Action a) const;

  /// Number of interned actions (including tau).
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Action> ids_;
};

/// Bidirectional map between action words (non-empty action sequences, or
/// the singleton tau word) and dense ids.  Words are flattened into a shared
/// pool; a word is addressed by (offset, length).
class WordTable {
 public:
  /// Interns @p word (a non-empty sequence of actions).
  WordId intern(std::span<const Action> word);

  /// Interns the singleton word consisting of @p a alone.
  WordId intern_single(Action a);

  /// Returns the actions of word @p w.
  std::span<const Action> actions(WordId w) const;

  /// Renders word @p w as a '.'-separated string using @p actions.
  std::string str(WordId w, const ActionTable& actions) const;

  std::size_t size() const { return index_.size(); }

 private:
  struct Entry {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
  };
  std::vector<Action> pool_;
  std::vector<Entry> index_;
  std::unordered_map<std::string, WordId> ids_;  // key: raw bytes of the word

  static std::string key(std::span<const Action> word);
};

}  // namespace unicon
