// Small numeric helpers used throughout the library.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

namespace unicon {

/// Compensated (Kahan) accumulator for long probability sums.
class KahanSum {
 public:
  void add(double x) {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// True iff |a - b| <= tol (absolute tolerance).
inline bool approx_equal(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Clamps a probability-like value into [0, 1]; values outside by more than
/// @p slack indicate a bug and are reported by the callers.
inline double clamp01(double p) {
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

/// a * b saturated to UINT64_MAX on overflow.  Budget-style comparisons
/// ("is k * n under the cap?") must not wrap: a wrapped product can land
/// below the cap and green-light an allocation of astronomical true size.
inline std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (b != 0 && a > kMax / b) return kMax;
  return a * b;
}

/// Maximum absolute difference between two equally sized vectors.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// L1 norm of a vector.
double l1_norm(std::span<const double> v);

}  // namespace unicon
