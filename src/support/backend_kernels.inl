// Backend kernel bodies shared by the portable and AVX2 translation units.
//
// Included (never compiled standalone) after the including TU defines, in
// the current namespace, the single point of divergence:
//
//   inline double dot_entries(const double* prob, const std::uint32_t* col,
//                             const double* q, std::uint64_t first,
//                             std::uint64_t last);
//
// dot_entries must implement the striped-lane contract from backend.hpp —
// four accumulator lanes over groups of four entries, combined as
// (a0 + a2) + (a1 + a3), then a sequential scalar tail — so that every
// implementation of it yields bit-identical sums.  Everything above the dot
// (transition iteration, max/min reduction, tie-breaking, delta latching)
// lives here exactly once, so the two simd backends cannot drift apart.

static double relax_rows(const DenseKernelView& k, double gval, bool maximize,
                         const double* q, double* out, std::uint64_t* decisions,
                         std::uint64_t begin, std::uint64_t end) {
  double delta = 0.0;
  for (std::uint64_t r = begin; r < end; ++r) {
    const std::uint64_t first_t = k.row_first[r];
    const std::uint64_t last_t = k.row_first[r + 1];
    // Same init as the serial sweep: probabilities live in [0, 1], so -1/2
    // lose against any real transition value; a transitionless row is 0.
    double best = first_t == last_t ? 0.0 : (maximize ? -1.0 : 2.0);
    std::uint64_t best_t = kNoKernelChoice;
    for (std::uint64_t t = first_t; t < last_t; ++t) {
      const double base = k.goal_pr[t] * gval;
      const double acc =
          base + dot_entries(k.prob, k.col, q, k.entry_first[t], k.entry_first[t + 1]);
      if (maximize ? acc > best : acc < best) {
        best = acc;
        best_t = t;
      }
    }
    // NaN-capturing max, as in the serial sweep: identical to std::max for
    // finite deviations but latches NaN so the caller's finiteness check
    // fires instead of silently dropping a poisoned update.
    const double dev = best - q[r] < 0.0 ? q[r] - best : best - q[r];
    if (!(dev <= delta)) delta = dev;
    out[r] = best;
    if (decisions != nullptr) {
      decisions[r] = best_t == kNoKernelChoice
                         ? kNoKernelChoice
                         : k.orig_trans_first[r] + (best_t - first_t);
    }
  }
  return delta;
}

static double choice_rows(const DenseKernelView& k, double gval, const double* q,
                          const std::uint64_t* choice, double* out,
                          std::uint64_t begin, std::uint64_t end) {
  double delta = 0.0;
  for (std::uint64_t r = begin; r < end; ++r) {
    const std::uint64_t t = choice[r];
    double acc = 0.0;
    if (t != kNoKernelChoice) {
      acc = k.goal_pr[t] * gval +
            dot_entries(k.prob, k.col, q, k.entry_first[t], k.entry_first[t + 1]);
    }
    const double dev = acc - q[r] < 0.0 ? q[r] - acc : acc - q[r];
    if (!(dev <= delta)) delta = dev;  // NaN-capturing max
    out[r] = acc;
  }
  return delta;
}

static void gather_rows(const GatherView& g, const double* x, double* out,
                        std::uint64_t begin, std::uint64_t end) {
  for (std::uint64_t r = begin; r < end; ++r) {
    const double diag = g.diag[r] * x[r];
    out[r] = diag + dot_entries(g.prob, g.col, x, g.row_first[r], g.row_first[r + 1]);
  }
}
