#include "support/rng.hpp"

#include <cmath>

#include "support/errors.hpp"

namespace unicon {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) throw ModelError("Rng::next_below: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::next_exponential(double rate) {
  if (!(rate > 0.0)) throw ModelError("Rng::next_exponential: rate must be positive");
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  // Two dependent splitmix64 passes: the first whitens the (seed, stream)
  // pair, the second decorrelates neighbouring streams.
  std::uint64_t x = seed;
  std::uint64_t mixed = splitmix64(x) ^ (stream * 0xda942042e4dd58b5ull);
  return splitmix64(mixed);
}

std::size_t Rng::next_discrete(std::span<const double> weights) {
  if (weights.empty()) throw ModelError("Rng::next_discrete: empty weights");
  double total = 0.0;
  for (double w : weights) total += w;
  if (!(total > 0.0)) throw ModelError("Rng::next_discrete: weights must have positive sum");
  double x = next_double() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace unicon
