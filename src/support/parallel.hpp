// Row-parallel sweep execution for the value-iteration hot paths.
//
// The Algorithm-1 backward iteration and the uniformized CTMC sweeps apply
// the same state-local update to every row of a sparse kernel, k(eps, E, t)
// times in a row.  A WorkerPool keeps a fixed team of threads alive across
// all iterations of one solve and hands each worker a contiguous state
// range per sweep; spawning threads per iteration would dominate the sweep
// cost for the small-to-medium models of Table 1.
//
// Determinism: each worker writes only its own slice of the output vector
// and reduces its local sup-norm delta into a dedicated padded slot, so a
// sweep's results are bit-identical for every thread count (max-reduction
// over disjoint slices is order-insensitive).  threads == 1 never spawns a
// thread and runs the sweep inline on the caller — exactly the historical
// serial path.
#pragma once

#include <barrier>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace unicon {

/// Resolves a user-facing thread-count option: 0 picks
/// hardware_concurrency (at least 1), anything else is taken as given.
unsigned resolve_threads(unsigned requested);

class WorkerPool;

/// Pool sized for @p rows rows of work: resolve_threads(@p threads) capped
/// at max(rows, 1), so tiny models never oversubscribe.
WorkerPool make_worker_pool(unsigned threads, std::size_t rows);

/// A team of (size - 1) helper threads plus the calling thread.  run()
/// partitions [0, n) into size() contiguous chunks and executes
/// fn(worker, begin, end) on each worker, blocking until the sweep is done.
class WorkerPool {
 public:
  using Sweep = std::function<void(unsigned worker, std::size_t begin, std::size_t end)>;

  /// @p threads is resolved via resolve_threads(); a pool of size 1 is
  /// thread-free.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned size() const { return size_; }

  /// Runs one sweep over [0, n).  Chunks are deterministic functions of
  /// (n, size()); workers beyond n get empty ranges.  Not reentrant.
  ///
  /// Exception safety: an exception escaping fn on any worker is captured,
  /// the sweep still completes its barrier (other workers finish their
  /// chunks), and the lowest-numbered worker's exception is rethrown here
  /// on the calling thread.  The pool stays usable afterwards.
  void run(std::size_t n, const Sweep& fn);

  /// Per-worker accumulator slot padded to its own cache line, for
  /// race-free delta reductions.
  struct alignas(64) Slot {
    double value = 0.0;
  };

  /// Max-reduction over the per-worker slots written by one sweep.
  static double reduce_max(const std::vector<Slot>& slots) {
    double value = 0.0;
    for (const Slot& slot : slots) value = value > slot.value ? value : slot.value;
    return value;
  }

 private:
  void worker_loop(unsigned worker);

  unsigned size_ = 1;
  std::vector<std::thread> threads_;
  std::barrier<> start_;
  std::barrier<> done_;
  const Sweep* sweep_ = nullptr;
  std::size_t n_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace unicon
