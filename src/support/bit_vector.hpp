// Packed bit set over 64-bit words for the solver hot paths.
//
// The goal/avoid/locked/partition sets used throughout the analyses were
// historically std::vector<bool>, whose per-element proxy (shift + mask +
// bound branch through a byte-addressed word) is hostile to the value
// iteration inner loop and invisible to vectorizers.  BitVector stores the
// same sets as packed std::uint64_t words (Storm's storage/BitVector is the
// proven idiom): membership tests compile to one shift and mask on a word
// kept in register, whole-word operations (and/or/andNot, count, next_set)
// process 64 states per step, and the word array is what the SIMD backend
// dispatches on.
//
// Interop: implicit conversion from std::vector<bool> (and an
// initializer_list<bool> constructor) keeps the long tail of callers —
// language frontend masks, .lab readers, tests — source-compatible; the
// solver-facing producers build BitVector natively.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace unicon {

class BitVector {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  BitVector() = default;
  explicit BitVector(std::size_t n, bool value = false) { assign(n, value); }
  BitVector(std::initializer_list<bool> bits);
  /// Implicit bridge from the historical representation.
  BitVector(const std::vector<bool>& bits);  // NOLINT(google-explicit-constructor)

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Membership test: one shift and mask.
  bool operator[](std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1u; }
  bool get(std::size_t i) const { return (*this)[i]; }

  void set(std::size_t i, bool value = true) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Writable proxy so `mask[i] = flag;` call sites keep working.  The hot
  /// paths use the const operator[] (a plain bool); the proxy is a
  /// construction-time convenience only.
  class Reference {
   public:
    Reference(BitVector& v, std::size_t i) : v_(v), i_(i) {}
    Reference& operator=(bool value) {
      v_.set(i_, value);
      return *this;
    }
    Reference& operator=(const Reference& other) { return *this = static_cast<bool>(other); }
    operator bool() const { return static_cast<const BitVector&>(v_)[i_]; }

   private:
    BitVector& v_;
    std::size_t i_;
  };
  Reference operator[](std::size_t i) { return Reference(*this, i); }

  void assign(std::size_t n, bool value);
  void resize(std::size_t n, bool value = false);
  void clear() {
    size_ = 0;
    words_.clear();
  }
  void push_back(bool value);

  /// Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }
  /// True when every bit is set (vacuously true when empty).
  bool all() const;

  /// Index of the first set bit at or after @p from; npos when none.
  /// Word-level scan: the iteration idiom for sparse sets is
  ///   for (auto i = v.next_set(0); i != BitVector::npos; i = v.next_set(i + 1))
  std::size_t next_set(std::size_t from) const;
  /// Index of the first clear bit at or after @p from; npos when none.
  std::size_t next_unset(std::size_t from) const;

  /// Word-level combination; sizes must match (ModelError otherwise).
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  BitVector& operator^=(const BitVector& other);
  /// this := this & ~other.
  BitVector& and_not(const BitVector& other);
  /// Flips every bit (tail bits beyond size stay clear).
  void flip();

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitVector& a, const BitVector& b) { return !(a == b); }

  /// Packed words, least-significant bit of words()[0] = element 0.  Bits at
  /// and beyond size() are guaranteed clear (the class maintains this after
  /// every mutation), so word-level consumers never need a tail mask.
  std::span<const std::uint64_t> words() const { return {words_.data(), words_.size()}; }
  std::size_t num_words() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }

  /// Round-trip back to the historical representation (tests, io).
  std::vector<bool> to_vector_bool() const;

  /// Read-only iteration over bools, for range-for compatibility.
  class const_iterator {
   public:
    using value_type = bool;
    const_iterator(const BitVector* v, std::size_t i) : v_(v), i_(i) {}
    bool operator*() const { return (*v_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.i_ != b.i_;
    }

   private:
    const BitVector* v_;
    std::size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  /// Clears bits at positions >= size_ in the last word.
  void clear_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace unicon
