// Cooperative execution control for long-running analyses.
//
// A RunGuard bundles a wall-clock deadline, a heap budget, and a
// cancellation token behind one cheap polling interface.  Stages poll at
// natural boundaries (per value-iteration step, per refinement round, per
// block of explored states); the first violation wins and is sticky, so
// every thread of a parallel sweep observes the same outcome and the sweep
// stops within one barrier.
//
// Two consumption styles:
//   - Solvers with a soundness story (Algorithm 1, the uniformized CTMC
//     sweeps) call poll()/should_abort_sweep() and, on a stop, return a
//     *partial* result tagged with RunStatus and a residual bound derived
//     from the unconsumed Poisson window mass.
//   - Structural stages that cannot degrade (composition, bisimulation,
//     transform) call check(stage), which throws a typed BudgetError.
//
// Guards are passed as nullable pointers through options structs; a null
// guard costs one branch per polling site, keeping unguarded runs
// bit-identical to pre-guard behaviour.
//
// Memory accounting hooks the global allocator (operator new/delete are
// replaced in run_guard.cpp).  Accounting is off unless a
// MemoryAccountingScope is alive, in which case net live bytes allocated
// inside the scope are charged against the guard's budget.  The same hook
// powers the fault-injection harness's Nth-allocation failure.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <span>

#include "support/errors.hpp"

namespace unicon {

/// Terminal state of a guarded run.  Converged means "ran to completion";
/// the other three identify which budget fired first.
enum class RunStatus : int {
  Converged = 0,
  DeadlineExceeded = 1,
  MemoryBudgetExceeded = 2,
  Cancelled = 3,
};

/// Short stable identifier ("converged", "deadline-exceeded", ...).
const char* run_status_name(RunStatus status);

/// Maps a non-Converged status to its ErrorCode (Deadline / MemoryBudget /
/// Cancelled); Converged maps to Ok.
ErrorCode run_status_code(RunStatus status);

/// Snapshot handed to the checkpoint callback at iteration boundaries.
/// `values` is the solver's live iterate; it is writable so a checkpoint
/// consumer can persist it for resume — and so the fault-injection harness
/// can poison it deterministically.
struct RunCheckpoint {
  const char* stage = "";        ///< e.g. "timed_reachability"
  std::uint64_t step = 0;        ///< iterations executed so far
  std::uint64_t planned = 0;     ///< total iterations planned
  double residual_bound = 0.0;   ///< sound error bound if stopped here
  std::span<double> values;      ///< live iterate (writable)
};

class RunGuard {
 public:
  using CheckpointFn = std::function<void(const RunCheckpoint&)>;

  RunGuard() = default;
  RunGuard(const RunGuard&) = delete;
  RunGuard& operator=(const RunGuard&) = delete;

  /// Arms a wall-clock deadline @p seconds from now (<= 0 disarms).
  void set_deadline(double seconds);

  /// Arms a heap budget in bytes (0 disarms).  Charged only while a
  /// MemoryAccountingScope for this guard is alive; the budget bounds net
  /// live bytes allocated inside the scope, not the process RSS.
  void set_memory_budget(std::uint64_t bytes);

  /// Requests cooperative cancellation.  Async-signal-safe (stores to
  /// lock-free atomics only), so it may be called from a SIGINT handler.
  void request_cancel();

  /// Deterministic cancellation for tests/fault plans: the @p n-th future
  /// call to poll() (1-based) cancels the run.  Worker-thread sweep checks
  /// do not advance this counter, so the trigger point does not depend on
  /// thread interleaving.  0 disarms.
  void cancel_after_polls(std::uint64_t n);

  /// Installs a checkpoint callback invoked by solvers every @p stride
  /// successful polls (from the coordinating thread only).
  void set_checkpoint(CheckpointFn fn, std::uint64_t stride = 1);

  /// Coordinating-thread poll at an iteration boundary.  Returns Converged
  /// while the run may continue; otherwise the sticky terminal status.
  RunStatus poll();

  /// Cheap worker-side check usable from any thread, at sub-iteration
  /// granularity.  Evaluates deadline/memory but never the deterministic
  /// poll counter.  True once the run must stop.
  bool should_abort_sweep();

  /// True once any budget fired (sticky; acquire load only).
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Terminal status so far (Converged while still running).
  RunStatus status() const {
    return static_cast<RunStatus>(status_.load(std::memory_order_acquire));
  }

  /// Poll-and-throw for structural stages: on a stop, throws BudgetError
  /// with run_status_code() and a message naming @p stage.
  void check(const char* stage);

  /// True when a checkpoint callback is installed and due at @p step — lets
  /// solvers skip computing checkpoint arguments (the residual bound costs
  /// a pass over the Poisson window) otherwise.
  bool wants_checkpoint(std::uint64_t step) const {
    return checkpoint_fn_ != nullptr &&
           (checkpoint_stride_ <= 1 || step % checkpoint_stride_ == 0);
  }

  /// Publishes a checkpoint if a callback is installed and the stride is
  /// due.  Coordinating thread only.
  void checkpoint(const char* stage, std::uint64_t step, std::uint64_t planned,
                  double residual_bound, std::span<double> values);

  /// Net live bytes charged to this guard by the accounting scope.
  /// May be transiently negative when memory allocated before the scope is
  /// freed inside it.
  std::int64_t memory_in_use() const { return live_bytes_.load(std::memory_order_relaxed); }

  /// Number of coordinating-thread polls so far (deterministic).
  std::uint64_t polls() const { return poll_count_.load(std::memory_order_relaxed); }

  /// For accounting-hook use.
  void note_alloc(std::size_t bytes) {
    live_bytes_.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
  }
  void note_free(std::size_t bytes) {
    live_bytes_.fetch_sub(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
  }

 private:
  /// Evaluates deadline/memory/cancel now; latches the first violation.
  bool violated_now();
  /// Latches @p status if no status is set yet (first setter wins).
  void trip(RunStatus status);

  std::atomic<bool> stop_{false};
  std::atomic<int> status_{static_cast<int>(RunStatus::Converged)};
  std::atomic<bool> cancel_requested_{false};
  std::atomic<std::int64_t> live_bytes_{0};
  std::atomic<std::uint64_t> poll_count_{0};
  std::uint64_t cancel_at_poll_ = 0;  // 0 = disarmed
  std::uint64_t memory_budget_ = 0;   // bytes; 0 = disarmed
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  CheckpointFn checkpoint_fn_;
  std::uint64_t checkpoint_stride_ = 1;
};

/// RAII: while alive, global operator new/delete charge net live bytes to
/// @p guard (process-wide; at most one scope may be active at a time —
/// nesting throws ModelError).  Destruction detaches the hook.
class MemoryAccountingScope {
 public:
  explicit MemoryAccountingScope(RunGuard& guard);
  ~MemoryAccountingScope();

  MemoryAccountingScope(const MemoryAccountingScope&) = delete;
  MemoryAccountingScope& operator=(const MemoryAccountingScope&) = delete;
};

/// Fault-injection hook: while a MemoryAccountingScope is active, the
/// @p nth accounted allocation (1-based, counted from arming) throws
/// std::bad_alloc.  0 disarms.  Only allocations made by the thread that
/// opened the scope count toward (or can trip) the fault — byte
/// accounting stays process-wide, but an injected failure can never land
/// on an unrelated thread's allocation — so the failing call site is
/// deterministic for the owning thread's serial code.
void arm_allocation_failure(std::uint64_t nth);

/// Scope-owner-thread allocations accounted since the active scope was
/// opened (0 when idle).
std::uint64_t accounted_allocations();

}  // namespace unicon
