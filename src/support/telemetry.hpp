// Pipeline-wide observability: a low-overhead, thread-safe metrics
// registry plus hierarchical stage spans with one JSON exporter.
//
// The pipeline (compose -> bisim -> transform -> value iteration) is
// instrumented at its natural stage boundaries; what each stage records is
// exactly what governs its cost: intermediate state-space sizes for the
// compositional stages (frontier size, product states, refinement blocks)
// and the Poisson-window truncation for the solvers (left/right bounds,
// iterations executed, early-termination step).
//
// Consumption style mirrors RunGuard: a Telemetry registry is passed as a
// nullable pointer through options structs.  A null pointer costs one
// branch per instrumentation site and keeps results bit-identical to the
// uninstrumented build; a live registry only *observes* (no arithmetic of
// any solver changes), so results are bit-identical with telemetry on or
// off, and across thread counts.
//
// Instrument costs:
//   - Counter::add is one relaxed fetch_add; hot loops batch locally and
//     add once per sweep (the <2% VI hot-loop contract of the RunGuard
//     benchmark also covers telemetry, see BM_Algorithm1Telemetry).
//   - Spans are registered under a mutex, but spans open/close at stage
//     boundaries (a handful per run), never inside loops.
//   - Handles returned by counter()/gauge()/histogram() have stable
//     addresses for the registry's lifetime and may be used lock-free from
//     any thread (e.g. one counter per WorkerPool worker).
//
// Span lifecycle: span("name") opens a child of the innermost span still
// open (registry-global stack, coordinating thread only); the returned
// RAII handle closes it with the elapsed wall time.  Stack unwinding
// closes spans on exceptions, and write_json() emits still-open spans
// with their elapsed-so-far time and "open": true — so a budget-tripped
// (RunGuard) run still flushes a truthful partial telemetry tree.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace unicon {

/// Wall-clock stopwatch — the single timing utility of the code base (the
/// telemetry clock; spans use the same steady_clock internally).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Monotone event counter.  add() is wait-free; safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (plus a monotone-max update).  Safe from any
/// thread; concurrent set() keeps one of the written values.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to @p v if it is larger (CAS loop).
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram of non-negative integer samples.  Bucket b
/// counts samples with bit_width b, i.e. bucket 0 holds the sample 0 and
/// bucket b >= 1 holds samples in [2^(b-1), 2^b).  observe() is wait-free.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t sample);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// UINT64_MAX when no sample was observed.
  std::uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// The metrics registry: named counters/gauges/histograms plus the span
/// tree.  Non-copyable; shared by pointer through options structs.
class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// RAII handle for one stage span.  Move-only; closes the span (once) on
  /// destruction or close().  metric() attaches named numbers to the span
  /// in call order — integers stay integers in the JSON.
  class Span {
   public:
    Span(Span&& other) noexcept : telemetry_(other.telemetry_), id_(other.id_) {
      other.telemetry_ = nullptr;
    }
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { close(); }

    void metric(std::string_view key, double value);
    template <std::integral T>
    void metric(std::string_view key, T value) {
      metric_u64(key, static_cast<std::uint64_t>(value));
    }

    void close();

   private:
    friend class Telemetry;
    Span(Telemetry* telemetry, std::uint32_t id) : telemetry_(telemetry), id_(id) {}
    void metric_u64(std::string_view key, std::uint64_t value);
    Telemetry* telemetry_;  // null once closed / moved from
    std::uint32_t id_;
  };

  /// Opens a span named @p name as a child of the innermost open span
  /// (or as a root).  Coordinating thread only (one stage at a time).
  Span span(std::string name);

  /// Returns (creating on first use) the named instrument.  The reference
  /// stays valid and address-stable for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Serializes the whole registry as one JSON object:
  ///   {"schema": "unicon-telemetry-v1",
  ///    "spans": [{"name", "seconds", "open", "metrics": {...},
  ///               "children": [...]}, ...],
  ///    "counters": {...}, "gauges": {...},
  ///    "histograms": {"h": {"count", "sum", "min", "max",
  ///                         "buckets": [{"bucket", "count"}, ...]}}}
  /// Counters/gauges/histograms are sorted by name; spans are in start
  /// order; still-open spans carry their elapsed-so-far seconds.
  std::string to_json() const;
  void write_json(std::ostream& out) const;
  /// Writes to @p path, or to stderr when @p path is "-".  Returns false
  /// (with a warning on stderr) when the file cannot be written.
  bool write_json_file(const std::string& path) const;

 private:
  struct SpanNode {
    std::string name;
    std::uint32_t parent = kNoParent;
    std::vector<std::uint32_t> children;
    std::vector<std::pair<std::string, std::string>> metrics;  // key -> rendered number
    std::chrono::steady_clock::time_point start;
    double seconds = 0.0;
    bool open = true;
  };
  static constexpr std::uint32_t kNoParent = static_cast<std::uint32_t>(-1);

  void close_span(std::uint32_t id);
  void span_metric(std::uint32_t id, std::string_view key, std::string rendered);
  void append_span_json(std::string& out, std::uint32_t id, int indent) const;

  mutable std::mutex mutex_;
  std::vector<SpanNode> spans_;
  std::vector<std::uint32_t> open_stack_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

namespace telemetry {

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

/// One benchmark record: a harness/case label plus named numeric metrics
/// in insertion order.
struct BenchRecord {
  std::string bench;

  BenchRecord& add(std::string key, double value);
  template <std::integral T>
  BenchRecord& add(std::string key, T value) {
    return add_u64(std::move(key), static_cast<std::uint64_t>(value));
  }
  BenchRecord& add_u64(std::string key, std::uint64_t value);

  std::vector<std::pair<std::string, std::string>> metrics;  // key -> rendered
};

/// The single emitter behind every BENCH_*.json file: collects records and
/// writes them as a JSON array on write() (or destruction).  Schema shared
/// by all harnesses (keys documented in README "Benchmarks"):
///   [{"bench": "<harness/case>", "<metric>": <number>, ...}, ...]
/// Integers are emitted as integers, seconds with 6 decimals.  When
/// @p env_override names an environment variable and it is set non-empty,
/// its value replaces the default path.
class BenchJson {
 public:
  explicit BenchJson(std::string default_path, const char* env_override = nullptr);
  ~BenchJson() { write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void record(BenchRecord r) { records_.push_back(std::move(r)); }

  /// Writes and clears the collected records; no-op when empty.
  void write();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<BenchRecord> records_;
};

}  // namespace telemetry

}  // namespace unicon
