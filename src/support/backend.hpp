// Runtime-selected compute backends for the value-iteration hot loops.
//
// The Algorithm-1 sweep and the uniformized CTMC sweeps spend their time in
// one inner shape: gather q over a row's columns, dot with the branching
// probabilities, max/min-reduce over the row's transitions.  This header
// defines the backend vocabulary shared by the CTMDP and CTMC solvers:
//
//  - Backend: which engine runs the sweep.  `Serial` is the historical
//    scalar path, kept bit-identical to the pre-backend code and used by
//    default.  `Simd` is the dense-kernel engine with an AVX2 inner loop
//    (portable striped-scalar fallback when AVX2 is unavailable at build or
//    run time).  `SimdPortable` forces that fallback — it exists so the
//    tests can prove the AVX2 and portable kernels are bit-identical.
//  - KernelOps: the block-level function-pointer table a backend supplies.
//    Granularity is a row range, not a row — the per-row virtual-call cost
//    of a finer interface would eat the SIMD win.
//  - DenseKernelView / GatherView: the POD array views the ops consume.
//
// This lives in support/ (not ctmdp/) because both unicon_ctmdp and
// unicon_ctmc need it and unicon_ctmdp links unicon_ctmc;
// ctmdp/backend.hpp re-exports it next to the solver-facing kernels.
//
// FP policy (DESIGN.md Sec. 10): the two simd kernels accumulate row dots
// in four striped lanes combined as (a0+a2)+(a1+a3) with a sequential
// scalar tail, compiled with -ffp-contract=off and no FMA intrinsics, so
// `simd` and `simd-portable` produce bit-identical results on every
// machine.  `serial` keeps the historical strictly-sequential accumulation
// order and therefore differs from `simd` by reassociation error only.
#pragma once

#include <cstdint>
#include <string>

namespace unicon {

enum class Backend : std::uint8_t {
  Auto,          ///< resolve via UNICON_BACKEND, else Serial
  Serial,        ///< historical scalar sweep (bit-identical to the seed)
  Simd,          ///< dense kernel; AVX2 when available, else portable stripes
  SimdPortable,  ///< dense kernel, striped scalar lanes (testing / no-AVX2)
};

/// Stable name for a backend ("auto", "serial", "simd", "simd-portable").
const char* backend_name(Backend backend);

/// Parses a backend name as accepted by --backend / UNICON_BACKEND.
/// Throws ModelError on an unknown name, listing the valid ones.
Backend parse_backend(const std::string& name);

/// Resolves Auto: the UNICON_BACKEND environment variable when set (parsed
/// like --backend; an invalid value throws, deliberately loud for CI
/// overrides), Serial otherwise.  Non-Auto values pass through unchanged.
Backend resolve_backend(Backend requested);

/// True when the running CPU supports AVX2 (independent of whether the
/// AVX2 translation unit was compiled in).
bool cpu_supports_avx2();

/// True when the `simd` backend would actually dispatch to the AVX2 kernel
/// (compiled in and supported by this CPU).
bool simd_uses_avx2();

/// Dense discrete kernel restricted to the rows the sweep actually
/// relaxes (non-goal, non-avoided states).  Column indices are *dense row
/// indices*: the gathered iterate only ever holds those rows, which is
/// what keeps the gather cache-resident.  Probability mass into goal
/// states is folded into goal_pr (all goal states share one iterate value
/// by uniformity of the goal update); mass into avoided states is dropped
/// (their value is exactly +0.0).
struct DenseKernelView {
  std::uint64_t num_rows = 0;
  const std::uint64_t* row_first = nullptr;    ///< [num_rows + 1] -> transition
  const std::uint64_t* entry_first = nullptr;  ///< [num_trans + 1] -> entry
  const double* goal_pr = nullptr;             ///< [num_trans] mass into goal
  const double* prob = nullptr;                ///< [num_entries]
  const std::uint32_t* col = nullptr;          ///< [num_entries] -> dense row
  /// [num_rows] original model transition id of each row's first
  /// transition; dense transitions of a row keep the model's order, so the
  /// original id of dense transition t in row r is
  /// orig_trans_first[r] + (t - row_first[r]).  May be null when the
  /// caller never records decisions.
  const std::uint64_t* orig_trans_first = nullptr;
};

/// Plain CSR gather with a diagonal term: out[r] = diag[r] * x[r] +
/// sum_j prob[j] * x[col[j]] over the row's entries.  Serves both CTMC
/// sweep directions (forward uses the transposed rows).
struct GatherView {
  std::uint64_t num_rows = 0;
  const double* diag = nullptr;                ///< [num_rows]
  const std::uint64_t* row_first = nullptr;    ///< [num_rows + 1]
  const double* prob = nullptr;
  const std::uint32_t* col = nullptr;
};

/// Sentinel for "no transition chosen" in decision/choice arrays; equals
/// ctmdp's kNoTransition.
inline constexpr std::uint64_t kNoKernelChoice = static_cast<std::uint64_t>(-1);

/// Block-level kernel table.  All row ranges operate on dense rows; the
/// caller owns goal/avoid handling, guard blocks and thread partitioning,
/// so per-backend results stay bit-identical across thread counts exactly
/// as in the serial engine (contiguous disjoint slices).
struct KernelOps {
  const char* name;

  /// Bellman relax of rows [begin, end): out[r] = best over the row's
  /// transitions of goal_pr[t] * gval + dot(prob, q[col]); ties keep the
  /// first transition, matching the serial sweep.  When decisions is
  /// non-null, decisions[r] receives the *original model* transition id of
  /// the argbest (kNoKernelChoice for rows without transitions, whose value
  /// is 0.0).  Returns the NaN-latching sup of |out[r] - q[r]| over the
  /// range (NaN propagates so the caller's finiteness check fires).
  double (*relax_rows)(const DenseKernelView& k, double gval, bool maximize,
                       const double* q, double* out, std::uint64_t* decisions,
                       std::uint64_t begin, std::uint64_t end);

  /// Fixed-scheduler relax: out[r] = value of dense transition choice[r]
  /// (kNoKernelChoice pins 0.0, the transitionless convention).  Returns
  /// the NaN-latching sup delta as relax_rows.
  double (*choice_rows)(const DenseKernelView& k, double gval, const double* q,
                        const std::uint64_t* choice, double* out,
                        std::uint64_t begin, std::uint64_t end);

  /// CSR-with-diagonal gather of rows [begin, end) (see GatherView).
  void (*gather_rows)(const GatherView& g, const double* x, double* out,
                      std::uint64_t begin, std::uint64_t end);
};

/// The ops table for a *resolved* simd-family backend: Simd dispatches to
/// the AVX2 kernels when compiled in and supported by this CPU, the
/// portable striped kernels otherwise; SimdPortable always takes the
/// portable kernels.  Serial/Auto have no ops table (the serial engine is
/// open-coded in the solvers) — passing them throws ModelError.
const KernelOps& kernel_ops(Backend resolved);

/// Internal: the AVX2 ops table, or nullptr when the AVX2 translation unit
/// was compiled without AVX2 support (UNICON_AVX2=OFF or non-x86).
const KernelOps* avx2_kernel_ops();

}  // namespace unicon
