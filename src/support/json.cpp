#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/errors.hpp"
#include "support/telemetry.hpp"

namespace unicon {

namespace {

[[noreturn]] void type_error(const char* expected, Json::Type got) {
  static const char* const names[] = {"null", "bool", "number", "string", "array", "object"};
  throw ParseError(std::string("expected ") + expected + ", got " +
                   names[static_cast<int>(got)]);
}

/// Recursive-descent parser over a byte range; offsets in errors are
/// 0-based into the request line.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  // Nesting cap: the parser recurses per '['/'{', so without a limit a
  // hostile line of a few hundred KB of "[[[[..." would overflow the
  // stack.  128 levels is far beyond any legitimate request (the protocol
  // nests at most 3 deep) and keeps recursion depth trivially bounded.
  static constexpr int kMaxDepth = 128;

  Json parse_value() {
    if (depth_ >= kMaxDepth) fail("nesting deeper than 128 levels");
    skip_ws();
    const char c = peek();
    switch (c) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case '"': return Json(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return value;
  }

  void append_codepoint(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: pair required
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    return Json(value);
  }

  Json parse_array() {
    ++pos_;  // '['
    ++depth_;
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') {
        --depth_;
        return Json(std::move(items));
      }
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    ++depth_;
    JsonObject fields;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(fields));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [existing, value] : fields) {
        if (existing == key) fail("duplicate key '" + key + "'");
      }
      skip_ws();
      if (peek() != ':') fail("expected ':'");
      ++pos_;
      fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') {
        --depth_;
        return Json(std::move(fields));
      }
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_number(std::string& out, double v) {
  // Exact small integers print as integers so iteration counts and state
  // ids stay integral on the wire (and in golden files).
  if (std::floor(v) == v && std::fabs(v) < 9007199254740992.0) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(v));
    out += buffer;
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  out += buffer;
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::Array) type_error("array", type_);
  return array_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_bool();
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_number();
}

std::string Json::get_string(const std::string& key, const std::string& fallback) const {
  const Json* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_string();
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) type_error("object", type_);
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Number: dump_number(out, number_); return;
    case Type::String:
      out += '"';
      out += telemetry::json_escape(string_);
      out += '"';
      return;
    case Type::Array: {
      out += '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out += ',';
        first = false;
        item.dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += telemetry::json_escape(key);
        out += "\":";
        value.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace unicon
