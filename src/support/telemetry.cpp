#include "support/telemetry.hpp"

#include <bit>
#include <cstdlib>
#include <utility>

namespace unicon {

namespace {

std::string render_u64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%llu", static_cast<unsigned long long>(value));
  return buffer;
}

std::string render_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string render_seconds(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.9f", value);
  return buffer;
}

void append_indent(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void Histogram::observe(std::uint64_t sample) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::uint64_t cur_min = min_.load(std::memory_order_relaxed);
  while (sample < cur_min &&
         !min_.compare_exchange_weak(cur_min, sample, std::memory_order_relaxed)) {
  }
  std::uint64_t cur_max = max_.load(std::memory_order_relaxed);
  while (sample > cur_max &&
         !max_.compare_exchange_weak(cur_max, sample, std::memory_order_relaxed)) {
  }
  buckets_[std::bit_width(sample)].fetch_add(1, std::memory_order_relaxed);
}

Telemetry::Span Telemetry::span(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto id = static_cast<std::uint32_t>(spans_.size());
  SpanNode node;
  node.name = std::move(name);
  node.start = std::chrono::steady_clock::now();
  if (!open_stack_.empty()) {
    node.parent = open_stack_.back();
    spans_[node.parent].children.push_back(id);
  }
  spans_.push_back(std::move(node));
  open_stack_.push_back(id);
  return Span(this, id);
}

void Telemetry::close_span(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanNode& node = spans_[id];
  if (!node.open) return;
  node.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - node.start).count();
  node.open = false;
  // Normally the closing span is the innermost open one; closing out of
  // order (possible during exception unwinding) just removes it wherever
  // it sits on the stack.
  for (std::size_t i = open_stack_.size(); i-- > 0;) {
    if (open_stack_[i] == id) {
      open_stack_.erase(open_stack_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

void Telemetry::span_metric(std::uint32_t id, std::string_view key, std::string rendered) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_[id].metrics.emplace_back(std::string(key), std::move(rendered));
}

void Telemetry::Span::metric(std::string_view key, double value) {
  if (telemetry_ != nullptr) telemetry_->span_metric(id_, key, render_double(value));
}

void Telemetry::Span::metric_u64(std::string_view key, std::uint64_t value) {
  if (telemetry_ != nullptr) telemetry_->span_metric(id_, key, render_u64(value));
}

void Telemetry::Span::close() {
  if (telemetry_ != nullptr) telemetry_->close_span(id_);
  telemetry_ = nullptr;
}

Counter& Telemetry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& Telemetry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& Telemetry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[name];
}

void Telemetry::append_span_json(std::string& out, std::uint32_t id, int indent) const {
  const SpanNode& node = spans_[id];
  const double seconds =
      node.open
          ? std::chrono::duration<double>(std::chrono::steady_clock::now() - node.start).count()
          : node.seconds;
  append_indent(out, indent);
  out += "{\"name\": \"" + telemetry::json_escape(node.name) + "\", \"seconds\": " +
         render_seconds(seconds) + ", \"open\": " + (node.open ? "true" : "false") +
         ", \"metrics\": {";
  for (std::size_t i = 0; i < node.metrics.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + telemetry::json_escape(node.metrics[i].first) + "\": " + node.metrics[i].second;
  }
  out += "}";
  if (node.children.empty()) {
    out += ", \"children\": []}";
    return;
  }
  out += ", \"children\": [\n";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    append_span_json(out, node.children[i], indent + 1);
    if (i + 1 < node.children.size()) out += ",";
    out += "\n";
  }
  append_indent(out, indent);
  out += "]}";
}

std::string Telemetry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += "{\n  \"schema\": \"unicon-telemetry-v1\",\n  \"spans\": [";
  bool first = true;
  for (std::uint32_t id = 0; id < spans_.size(); ++id) {
    if (spans_[id].parent != kNoParent) continue;
    out += first ? "\n" : ",\n";
    first = false;
    append_span_json(out, id, 2);
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + telemetry::json_escape(name) + "\": " + render_u64(c.value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + telemetry::json_escape(name) + "\": " + render_double(g.value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + telemetry::json_escape(name) + "\": {\"count\": " + render_u64(h.count()) +
           ", \"sum\": " + render_u64(h.sum());
    if (h.count() > 0) {
      out += ", \"min\": " + render_u64(h.min()) + ", \"max\": " + render_u64(h.max());
    }
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h.bucket(b);
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"bucket\": " + render_u64(b) + ", \"count\": " + render_u64(n) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Telemetry::write_json(std::ostream& out) const { out << to_json(); }

bool Telemetry::write_json_file(const std::string& path) const {
  const std::string json = to_json();
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stderr);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write telemetry to %s\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

namespace telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

BenchRecord& BenchRecord::add(std::string key, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6f", value);
  metrics.emplace_back(std::move(key), buffer);
  return *this;
}

BenchRecord& BenchRecord::add_u64(std::string key, std::uint64_t value) {
  metrics.emplace_back(std::move(key), render_u64(value));
  return *this;
}

BenchJson::BenchJson(std::string default_path, const char* env_override) {
  const char* env = env_override != nullptr ? std::getenv(env_override) : nullptr;
  path_ = env != nullptr && env[0] != '\0' ? env : std::move(default_path);
}

void BenchJson::write() {
  if (records_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    std::fprintf(f, "  {\"bench\": \"%s\"", json_escape(r.bench).c_str());
    for (const auto& [key, rendered] : r.metrics) {
      std::fprintf(f, ", \"%s\": %s", json_escape(key).c_str(), rendered.c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records_.size(), path_.c_str());
  records_.clear();
}

}  // namespace telemetry

}  // namespace unicon
