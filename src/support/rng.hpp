// Deterministic pseudo-random numbers for property tests and simulation.
//
// xoshiro256++ seeded via splitmix64.  Self-contained so that test and
// simulation results are reproducible across standard-library versions
// (std::mt19937 distributions are not portable).
#pragma once

#include <cstdint>
#include <span>

namespace unicon {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Sample from Exp(rate).  Requires rate > 0.
  double next_exponential(double rate);

  /// Samples an index with probability weights[i] / sum(weights).
  /// Requires a non-empty span with non-negative entries and positive sum.
  std::size_t next_discrete(std::span<const double> weights);

 private:
  std::uint64_t s_[4];
};

/// Derives an independent stream seed from a base seed: Rng(derive_seed(s, i))
/// for i = 0, 1, ... yields decorrelated generators.  Used to give every
/// simulation run its own generator, which makes parallel simulation results
/// independent of how runs are partitioned across threads.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream);

}  // namespace unicon
