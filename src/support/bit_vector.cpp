#include "support/bit_vector.hpp"

#include <bit>

#include "support/errors.hpp"

namespace unicon {

namespace {

std::size_t words_for(std::size_t n) { return (n + 63) / 64; }

}  // namespace

BitVector::BitVector(std::initializer_list<bool> bits) {
  assign(bits.size(), false);
  std::size_t i = 0;
  for (bool b : bits) set(i++, b);
}

BitVector::BitVector(const std::vector<bool>& bits) {
  assign(bits.size(), false);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
}

void BitVector::assign(std::size_t n, bool value) {
  size_ = n;
  words_.assign(words_for(n), value ? ~std::uint64_t{0} : 0);
  clear_tail();
}

void BitVector::resize(std::size_t n, bool value) {
  if (n < size_) {
    size_ = n;
    words_.resize(words_for(n));
    clear_tail();
    return;
  }
  const std::size_t old = size_;
  size_ = n;
  words_.resize(words_for(n), value ? ~std::uint64_t{0} : 0);
  if (value) {
    // Fill the gap bits inside the old last word.
    for (std::size_t i = old; i < n && (i >> 6) < words_.size() && (i >> 6) == (old >> 6); ++i) {
      words_[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
  }
  clear_tail();
}

void BitVector::push_back(bool value) {
  const std::size_t i = size_;
  if (words_for(i + 1) > words_.size()) words_.push_back(0);
  size_ = i + 1;
  if (value) words_[i >> 6] |= std::uint64_t{1} << (i & 63);
}

std::size_t BitVector::count() const {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool BitVector::any() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool BitVector::all() const {
  if (size_ == 0) return true;
  const std::size_t full = size_ / 64;
  for (std::size_t w = 0; w < full; ++w) {
    if (words_[w] != ~std::uint64_t{0}) return false;
  }
  const std::size_t rem = size_ & 63;
  if (rem != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << rem) - 1;
    if ((words_[full] & mask) != mask) return false;
  }
  return true;
}

std::size_t BitVector::next_set(std::size_t from) const {
  if (from >= size_) return npos;
  std::size_t w = from >> 6;
  std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      const std::size_t i = (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      return i < size_ ? i : npos;
    }
    if (++w >= words_.size()) return npos;
    bits = words_[w];
  }
}

std::size_t BitVector::next_unset(std::size_t from) const {
  if (from >= size_) return npos;
  std::size_t w = from >> 6;
  std::uint64_t bits = ~words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      const std::size_t i = (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      return i < size_ ? i : npos;
    }
    if (++w >= words_.size()) return npos;
    bits = ~words_[w];
  }
}

BitVector& BitVector::operator&=(const BitVector& other) {
  if (other.size_ != size_) throw ModelError("BitVector: size mismatch in &=");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  if (other.size_ != size_) throw ModelError("BitVector: size mismatch in |=");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  if (other.size_ != size_) throw ModelError("BitVector: size mismatch in ^=");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

BitVector& BitVector::and_not(const BitVector& other) {
  if (other.size_ != size_) throw ModelError("BitVector: size mismatch in and_not");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  return *this;
}

void BitVector::flip() {
  for (std::uint64_t& w : words_) w = ~w;
  clear_tail();
}

std::vector<bool> BitVector::to_vector_bool() const {
  std::vector<bool> out(size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = (*this)[i];
  return out;
}

void BitVector::clear_tail() {
  const std::size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

}  // namespace unicon
