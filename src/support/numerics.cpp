#include "support/numerics.hpp"

#include <algorithm>

namespace unicon {

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double m = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

double l1_norm(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += std::fabs(x);
  return s;
}

}  // namespace unicon
