#include "support/parallel.hpp"

#include <algorithm>

#ifdef __linux__
#include <sched.h>
#endif

namespace unicon {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
#ifdef __linux__
  // hardware_concurrency() reports online CPUs and ignores cgroup/affinity
  // limits, which badly oversubscribes containers; the affinity mask is the
  // usable count.
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int count = CPU_COUNT(&set);
    if (count > 0) return static_cast<unsigned>(count);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

WorkerPool make_worker_pool(unsigned threads, std::size_t rows) {
  const std::size_t cap = rows > 0 ? rows : 1;
  const std::size_t resolved = resolve_threads(threads);
  return WorkerPool(static_cast<unsigned>(resolved < cap ? resolved : cap));
}

WorkerPool::WorkerPool(unsigned threads)
    : size_(resolve_threads(threads)),
      start_(static_cast<std::ptrdiff_t>(size_)),
      done_(static_cast<std::ptrdiff_t>(size_)) {
  errors_.resize(size_);
  threads_.reserve(size_ - 1);
  try {
    for (unsigned w = 1; w < size_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  } catch (...) {
    // A failed spawn (e.g. an injected allocation failure) leaves fewer
    // than size_ barrier participants alive; supply the missing arrivals
    // so the already-running workers can observe stopping_ and exit,
    // instead of deadlocking the destructor-less unwind.
    stopping_ = true;
    start_.arrive(static_cast<std::ptrdiff_t>(size_ - threads_.size()));
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    throw;
  }
}

WorkerPool::~WorkerPool() {
  if (size_ > 1) {
    stopping_ = true;
    start_.arrive_and_wait();  // release workers into the stop check
    for (std::thread& t : threads_) t.join();
  }
}

namespace {

/// Contiguous chunk of [0, n) for @p worker out of @p size workers: the
/// first n % size chunks get one extra element.
std::pair<std::size_t, std::size_t> chunk(std::size_t n, unsigned worker, unsigned size) {
  const std::size_t base = n / size;
  const std::size_t extra = n % size;
  const std::size_t begin = worker * base + std::min<std::size_t>(worker, extra);
  const std::size_t end = begin + base + (worker < extra ? 1 : 0);
  return {begin, end};
}

}  // namespace

void WorkerPool::run(std::size_t n, const Sweep& fn) {
  if (size_ == 1) {
    fn(0, 0, n);
    return;
  }
  sweep_ = &fn;
  n_ = n;
  start_.arrive_and_wait();
  const auto [begin, end] = chunk(n_, 0, size_);
  try {
    (*sweep_)(0, begin, end);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  done_.arrive_and_wait();
  sweep_ = nullptr;
  for (std::exception_ptr& error : errors_) {
    if (error) {
      std::exception_ptr first = error;
      for (std::exception_ptr& e : errors_) e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

void WorkerPool::worker_loop(unsigned worker) {
  for (;;) {
    start_.arrive_and_wait();
    if (stopping_) return;
    const auto [begin, end] = chunk(n_, worker, size_);
    try {
      (*sweep_)(worker, begin, end);
    } catch (...) {
      errors_[worker] = std::current_exception();
    }
    done_.arrive_and_wait();
  }
}

}  // namespace unicon
