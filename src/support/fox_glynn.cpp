#include "support/fox_glynn.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "support/errors.hpp"

namespace unicon {

namespace {

std::string short_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double poisson_pmf(std::uint64_t n, double lambda) {
  if (lambda == 0.0) return n == 0 ? 1.0 : 0.0;
  const double logp =
      -lambda + static_cast<double>(n) * std::log(lambda) - std::lgamma(static_cast<double>(n) + 1.0);
  return std::exp(logp);
}

PoissonWindow PoissonWindow::compute(double lambda, double epsilon) {
  if (!(lambda >= 0.0) || !std::isfinite(lambda)) throw ModelError("PoissonWindow: lambda must be finite and >= 0");
  if (!(epsilon > 0.0) || epsilon >= 1.0) throw ModelError("PoissonWindow: epsilon must be in (0, 1)");

  PoissonWindow w;
  w.lambda_ = lambda;
  w.epsilon_ = epsilon;

  if (lambda == 0.0) {
    w.left_ = w.right_ = 0;
    w.weights_ = {1.0};
    w.total_mass_ = 1.0;
    w.suffix_mass_ = {1.0, 0.0};  // invariant: size weights + 1
    return w;
  }

  const auto mode = static_cast<std::uint64_t>(lambda);
  const double pmode = poisson_pmf(mode, lambda);

  // Expand outward from the mode, adding the larger of the two frontier
  // probabilities each step, until the accumulated mass reaches 1 - epsilon.
  // The frontier probabilities follow the ratio recurrences
  //   p(n+1) = p(n) * lambda / (n+1)      and      p(n-1) = p(n) * n / lambda.
  std::vector<double> up;    // p(mode+1), p(mode+2), ...
  std::vector<double> down;  // p(mode-1), p(mode-2), ...
  double up_p = pmode;       // last materialized probability above the mode
  double down_p = pmode;     // last materialized probability below the mode
  std::uint64_t hi = mode;
  std::uint64_t lo = mode;
  double mass = pmode;
  const double target = 1.0 - epsilon;

  while (mass < target) {
    const double next_up = up_p * lambda / static_cast<double>(hi + 1);
    const double next_down = lo > 0 ? down_p * static_cast<double>(lo) / lambda : 0.0;
    if (next_up <= 0.0 && next_down <= 0.0) {
      // Both frontier probabilities underflowed to zero before the window
      // reached 1 - epsilon: double precision cannot certify the requested
      // truncation error.  Report the achievable floor instead of quietly
      // returning a window with epsilon' = 1 - mass > epsilon — a silently
      // degraded window would invalidate every downstream residual bound.
      const double floor = 1.0 - mass;
      throw NumericError(
          "PoissonWindow: epsilon " + short_double(epsilon) + " is below the " +
          "accuracy floor achievable in double precision at lambda " +
          short_double(lambda) + "; smallest certifiable truncation error here is about " +
          short_double(floor) + " (window [" + std::to_string(lo) + ", " +
          std::to_string(hi) + "] mass " + short_double(mass) + ")");
    }
    if (next_up >= next_down) {
      ++hi;
      up_p = next_up;
      up.push_back(next_up);
      mass += next_up;
    } else {
      --lo;
      down_p = next_down;
      down.push_back(next_down);
      mass += next_down;
    }
  }

  w.left_ = lo;
  w.right_ = hi;
  w.total_mass_ = mass;
  w.weights_.resize(hi - lo + 1);
  for (std::size_t i = 0; i < down.size(); ++i) w.weights_[down.size() - 1 - i] = down[i];
  w.weights_[down.size()] = pmode;
  for (std::size_t i = 0; i < up.size(); ++i) w.weights_[down.size() + 1 + i] = up[i];

  w.suffix_mass_.resize(w.weights_.size() + 1);
  w.suffix_mass_.back() = 0.0;
  for (std::size_t i = w.weights_.size(); i-- > 0;)
    w.suffix_mass_[i] = w.suffix_mass_[i + 1] + w.weights_[i];
  return w;
}

double PoissonWindow::tail_mass(std::uint64_t n) const {
  // Window-restricted semantics, consistent with total_mass(): psi() is
  // zero outside [left, right], so for n <= left the whole window mass is
  // the tail — the true Poisson mass of [n, left) was truncated away by
  // construction (bounded by epsilon) and is deliberately NOT resurrected
  // here; callers that normalize by total_mass() stay exact.  tail_mass(0)
  // == total_mass() always holds, including for the degenerate lambda == 0
  // window (a default-constructed window has no mass at all).
  if (suffix_mass_.empty()) return 0.0;
  if (n <= left_) return total_mass_;
  if (n > right_) return 0.0;
  return suffix_mass_[n - left_];
}

}  // namespace unicon
