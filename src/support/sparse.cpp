#include "support/sparse.hpp"

#include <algorithm>

#include "support/errors.hpp"

namespace unicon {

double CsrMatrix::row_sum(std::size_t r) const {
  double sum = 0.0;
  for (const SparseEntry& e : row(r)) sum += e.value;
  return sum;
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  const std::size_t n = rows();
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (const SparseEntry& e : row(r)) acc += e.value * x[e.col];
    y[r] = acc;
  }
}

void CsrMatrix::multiply_transposed(std::span<const double> x, std::span<double> y) const {
  std::fill(y.begin(), y.end(), 0.0);
  const std::size_t n = rows();
  for (std::size_t r = 0; r < n; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (const SparseEntry& e : row(r)) y[e.col] += e.value * xr;
  }
}

void CsrBuilder::add(std::uint32_t row, std::uint32_t col, double value) {
  if (row >= rows_) rows_ = row + 1;
  triplets_.push_back(Triplet{row, col, value});
}

CsrMatrix CsrBuilder::finish() {
  std::sort(triplets_.begin(), triplets_.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix m;
  m.row_ptr_.assign(rows_ + 1, 0);
  m.entries_.reserve(triplets_.size());

  std::size_t i = 0;
  for (std::uint32_t r = 0; r < rows_; ++r) {
    m.row_ptr_[r] = m.entries_.size();
    while (i < triplets_.size() && triplets_[i].row == r) {
      if (!m.entries_.empty() && m.row_ptr_[r] < m.entries_.size() &&
          m.entries_.back().col == triplets_[i].col) {
        m.entries_.back().value += triplets_[i].value;
      } else {
        m.entries_.push_back(SparseEntry{triplets_[i].col, triplets_[i].value});
      }
      ++i;
    }
  }
  m.row_ptr_[rows_] = m.entries_.size();

  triplets_.clear();
  rows_ = 0;
  return m;
}

}  // namespace unicon
