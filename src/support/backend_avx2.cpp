// AVX2 kernels for the simd backend.
//
// This is the only translation unit compiled with -mavx2 (gated on the
// UNICON_AVX2 CMake option, which also defines UNICON_AVX2_TU here); every
// other TU stays at the baseline ISA so the library runs on non-AVX2
// machines, where backend.cpp routes `simd` to the portable kernels after
// the runtime cpu_supports_avx2() probe.
//
// Bit-identity with the portable kernels (DESIGN.md Sec. 10): the dot uses
// separate _mm256_mul_pd / _mm256_add_pd — never an FMA, which would round
// once where two-step mul+add rounds twice — and this TU is compiled with
// -ffp-contract=off so the compiler cannot fuse them either.  The
// horizontal sum realizes exactly the (a0 + a2) + (a1 + a3) lane
// combination of the portable stripes, and the tail is the same sequential
// scalar loop.

#include "support/backend.hpp"

#if defined(UNICON_AVX2_TU) && defined(__AVX2__)

#include <immintrin.h>

namespace unicon {
namespace avx2 {

inline double dot_entries(const double* prob, const std::uint32_t* col, const double* q,
                          std::uint64_t first, std::uint64_t last) {
  __m256d acc4 = _mm256_setzero_pd();
  std::uint64_t j = first;
  for (; j + 4 <= last; j += 4) {
    const __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m256d p = _mm256_loadu_pd(prob + j);
    const __m256d v = _mm256_i32gather_pd(q, idx, 8);
    acc4 = _mm256_add_pd(acc4, _mm256_mul_pd(p, v));
  }
  // Lanes (a0, a1, a2, a3) -> (a0 + a2, a1 + a3) -> (a0 + a2) + (a1 + a3).
  const __m128d lo = _mm256_castpd256_pd128(acc4);
  const __m128d hi = _mm256_extractf128_pd(acc4, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double acc = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; j < last; ++j) acc += prob[j] * q[col[j]];
  return acc;
}

#include "support/backend_kernels.inl"

const KernelOps kOps = {"simd-avx2", &relax_rows, &choice_rows, &gather_rows};

}  // namespace avx2

const KernelOps* avx2_kernel_ops() { return &avx2::kOps; }

}  // namespace unicon

#else  // AVX2 not compiled in (UNICON_AVX2=OFF or non-x86 toolchain)

namespace unicon {

const KernelOps* avx2_kernel_ops() { return nullptr; }

}  // namespace unicon

#endif
