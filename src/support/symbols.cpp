#include "support/symbols.hpp"

#include <cstring>

#include "support/errors.hpp"

namespace unicon {

ActionTable::ActionTable() {
  names_.emplace_back("tau");
  ids_.emplace("tau", kTau);
}

Action ActionTable::intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<Action>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Action ActionTable::id(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) throw ModelError("unknown action: " + std::string(name));
  return it->second;
}

bool ActionTable::contains(std::string_view name) const {
  return ids_.find(std::string(name)) != ids_.end();
}

const std::string& ActionTable::name(Action a) const {
  if (a >= names_.size()) throw ModelError("action id out of range");
  return names_[a];
}

std::string WordTable::key(std::span<const Action> word) {
  std::string k(word.size() * sizeof(Action), '\0');
  if (!word.empty()) std::memcpy(k.data(), word.data(), k.size());
  return k;
}

WordId WordTable::intern(std::span<const Action> word) {
  if (word.empty()) throw ModelError("cannot intern the empty word");
  auto k = key(word);
  auto it = ids_.find(k);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<WordId>(index_.size());
  index_.push_back(Entry{pool_.size(), static_cast<std::uint32_t>(word.size())});
  pool_.insert(pool_.end(), word.begin(), word.end());
  ids_.emplace(std::move(k), id);
  return id;
}

WordId WordTable::intern_single(Action a) { return intern(std::span<const Action>(&a, 1)); }

std::span<const Action> WordTable::actions(WordId w) const {
  if (w >= index_.size()) throw ModelError("word id out of range");
  const Entry& e = index_[w];
  return std::span<const Action>(pool_.data() + e.offset, e.length);
}

std::string WordTable::str(WordId w, const ActionTable& actions_tbl) const {
  std::string out;
  bool first = true;
  for (Action a : actions(w)) {
    if (!first) out += '.';
    out += actions_tbl.name(a);
    first = false;
  }
  return out;
}

}  // namespace unicon
