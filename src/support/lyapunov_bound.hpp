// Lyapunov-certificate truncation for uniformization-based solvers.
//
// Fox-Glynn truncation (fox_glynn.hpp) sizes the iteration count purely
// from the Poisson parameter lambda = E t: the window [left, right] grows
// like lambda, so a long horizon forces ~lambda sweeps even when the value
// iteration reached its fixed point ages earlier.  Salamati, Soudjani and
// Majumdar (arXiv:1909.06112) observe that a Lyapunov certificate for the
// *model* bounds how much the steps beyond m can still move the answer:
// once that bound drops below the remaining error budget, the iteration
// may stop — an effective truncation k_lyapunov that depends on the
// model's mixing behaviour instead of the time bound.
//
// Our certificate is the survival iterate of the non-goal restriction N of
// the uniformized kernel (max over nondeterminism, so one certificate
// covers both objectives):
//
//     u_0 = 1 on non-goal/non-avoid states, 0 elsewhere;  u_{j+1} = N u_j
//     ubar_j = sup_s u_j(s)
//
// ubar is submultiplicative (ubar_{a+b} <= ubar_a ubar_b), so the partial
// records bound the whole series:
//
//     sum_{m>=0} ubar_m  <=  (sum_{m<j} ubar_m) / (1 - ubar_j)    (*)
//
// The solvers use (*) two ways (DESIGN.md Sec. 14):
//  - CTMDP backward VI: below the Poisson window the operator T is
//    homogeneous and the difference d = Tq - q vanishes on goal/avoid
//    states, so |T^m d| <= ||d|| u_m and stopping after the sweep with
//    sup-delta ||d|| forfeits at most ||d|| * sum_m ubar_m.
//  - CTMC transient fold: the residual r_m = v_inf - v_m of the absorbing
//    chain satisfies 0 <= r_m <= u_m, so folding the un-accumulated window
//    mass onto the current iterate errs by at most tail_mass * ubar_m.
//
// The requested epsilon is split in half when the certificate engages:
// the Poisson window is recomputed at epsilon/2 and the certified stop may
// spend the other epsilon/2, so the reported residual_bound stays <=
// epsilon.  Advancing u costs one extra sweep per step; a probe cap
// disengages the certificate (and frees u) when the model shows no
// contraction, bounding the overhead on slow-mixing models.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "support/fox_glynn.hpp"

namespace unicon {

/// Which truncation-bound provider sizes (and may cut short) the sweep.
enum class Truncation : std::uint8_t {
  Auto,      ///< Lyapunov when the horizon is long enough to pay for it
  FoxGlynn,  ///< Poisson window only (the historical behaviour)
  Lyapunov,  ///< Poisson window at epsilon/2 + certified stop at epsilon/2
};

/// Stable name ("auto", "fox-glynn", "lyapunov").
const char* truncation_name(Truncation mode);

/// Parses a truncation name as accepted by --truncation / the server
/// envelope.  Throws ModelError on an unknown name, listing the valid ones.
Truncation parse_truncation(const std::string& name);

/// Auto engages the certificate only when the epsilon-window starts above
/// this step: shorter horizons have almost no below-window sweeps to save,
/// and keeping them on the pure Fox-Glynn path preserves bit-identical
/// results for every short-horizon query.
inline constexpr std::uint64_t kLyapunovAutoEngageLeft = 1024;

/// Sweeps the certificate keeps paying for the extra u-advance before
/// demanding contraction (ubar <= 1/2); beyond the cap a non-contracting
/// model disengages and continues on the plain Fox-Glynn schedule.
inline constexpr std::uint64_t kLyapunovProbeCap = 4096;

/// The resolved truncation policy for one solve.
struct TruncationPlan {
  /// FoxGlynn or Lyapunov — never Auto.
  Truncation resolved = Truncation::FoxGlynn;
  /// Error budget spent on the Poisson window (epsilon, or epsilon/2 when
  /// the certificate engaged).
  double window_epsilon = 0.0;
  /// Error budget the certified stop may spend (0 when not engaged).
  double stop_epsilon = 0.0;
  /// The window to iterate with, computed at window_epsilon.
  PoissonWindow window;
  /// Right/left truncation points of the *full-epsilon* Fox-Glynn window —
  /// the baseline k_foxglynn the telemetry compares against.
  std::uint64_t fox_glynn_left = 0;
  std::uint64_t fox_glynn_right = 0;

  bool engaged() const { return resolved == Truncation::Lyapunov; }
};

/// Resolves @p requested for a solve with Poisson parameter @p lambda and
/// total budget @p epsilon.  Auto engages when the full-epsilon window's
/// left point exceeds kLyapunovAutoEngageLeft; an explicit Lyapunov request
/// engages whenever there is any below-window sweep to save (left > 1).
/// Throws exactly where PoissonWindow::compute does.
TruncationPlan plan_truncation(Truncation requested, double lambda, double epsilon);

/// Scalar contraction record of the survival iterate: ubar_j = sup u_j for
/// j = 1..size(), with prefix sums answering the series bound (*) above.
/// The record is a pure function of (kernel, goal, avoid) — it does not
/// depend on the time bound — so one record serves every horizon of a
/// batch solve at its own age, reproducing each single-horizon stop
/// decision exactly.
class LyapunovSeries {
 public:
  LyapunovSeries(double stop_epsilon, std::uint64_t probe_cap = kLyapunovProbeCap)
      : stop_epsilon_(stop_epsilon), probe_cap_(probe_cap) {
    psum_.push_back(0.0);
    psum_.push_back(1.0);  // ubar_0 = 1
  }

  /// Appends ubar_{size()+1} = @p u_sup (the sup of the freshly advanced
  /// iterate).  NaN is recorded as-is: every certificate query on a NaN
  /// entry answers "not certified", so a poisoned iterate can never
  /// manufacture a stop.
  void record(double u_sup) {
    ubar_.push_back(u_sup);
    psum_.push_back(psum_.back() + u_sup);
  }

  std::uint64_t size() const { return ubar_.size(); }
  double stop_epsilon() const { return stop_epsilon_; }
  std::uint64_t probe_cap() const { return probe_cap_; }

  /// ubar_age for age in [1, size()].
  double ubar(std::uint64_t age) const { return ubar_[age - 1]; }

  /// Upper bound on sum_{m>=0} ubar_m from the first @p age records;
  /// +inf while ubar_age >= 1 (or NaN).
  double series_bound(std::uint64_t age) const {
    const double last = ubar_[age - 1];
    if (!(last < 1.0)) return std::numeric_limits<double>::infinity();
    return psum_[age] / (1.0 - last);
  }

  /// True when stopping after a sweep with sup-delta @p delta at @p age
  /// advances is certified within the stop budget.  False for NaN delta.
  bool certifies(double delta, std::uint64_t age) const {
    return age >= 1 && delta * series_bound(age) <= stop_epsilon_;
  }

  /// The certified error actually forfeited by such a stop (reported in
  /// residual_bound on top of the window epsilon).
  double stop_error(double delta, std::uint64_t age) const {
    return delta * series_bound(age);
  }

  /// True when a run reaching @p age should give up on the certificate:
  /// the probe budget is spent and the model has shown no contraction.
  bool should_disengage(std::uint64_t age) const {
    return age >= probe_cap_ && !(ubar_[probe_cap_ - 1] <= 0.5);
  }

 private:
  double stop_epsilon_ = 0.0;
  std::uint64_t probe_cap_ = kLyapunovProbeCap;
  std::vector<double> ubar_;  // ubar_[j-1] = ubar_j
  std::vector<double> psum_;  // psum_[j] = sum_{m<j} ubar_m
};

}  // namespace unicon
