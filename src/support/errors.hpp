// Error types shared across the unicon library.
//
// Every error carries a stable ErrorCode so callers (and the unicon_check
// CLI, which maps codes to process exit codes) can react to the *kind* of
// failure without parsing messages.  Codes are part of the tool contract:
// never renumber an existing one.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace unicon {

/// Stable machine-readable error/exit codes.  10-19 are model/input
/// problems, 20-29 are execution-control (RunGuard) outcomes.  unicon_check
/// exits with the numeric value; 0 is success and 2 is CLI usage error.
enum class ErrorCode : int {
  Ok = 0,
  Model = 10,        ///< structural precondition violated
  Zeno = 11,         ///< interactive cycle (zero-time divergence)
  Uniformity = 12,   ///< model is not uniform where uniformity is required
  Parse = 13,        ///< malformed input file
  Numeric = 14,      ///< NaN/Inf detected or accuracy floor unattainable
  Deadline = 20,     ///< wall-clock budget exhausted (structural stage)
  MemoryBudget = 21, ///< heap budget exhausted (structural stage)
  Cancelled = 22,    ///< cooperative cancellation (SIGINT, fault plan, ...)
  OutOfMemory = 23,  ///< allocation failure (std::bad_alloc)
  Overloaded = 24,   ///< admission control rejected the request (server queue full)
  Internal = 99,     ///< any other unexpected failure
};

/// Short stable identifier for an ErrorCode ("zeno", "deadline", ...),
/// used in --json-errors diagnostics.
inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok: return "ok";
    case ErrorCode::Model: return "model";
    case ErrorCode::Zeno: return "zeno";
    case ErrorCode::Uniformity: return "uniformity";
    case ErrorCode::Parse: return "parse";
    case ErrorCode::Numeric: return "numeric";
    case ErrorCode::Deadline: return "deadline";
    case ErrorCode::MemoryBudget: return "mem-budget";
    case ErrorCode::Cancelled: return "cancelled";
    case ErrorCode::OutOfMemory: return "out-of-memory";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

/// Base class for all unicon errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }
  /// Process exit code for this error (the numeric ErrorCode value).
  int exit_code() const { return static_cast<int>(code_); }

 private:
  ErrorCode code_ = ErrorCode::Internal;
};

/// A model violates a structural precondition (bad state id, negative rate,
/// empty state space, ...).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(ErrorCode::Model, what) {}
};

/// The closed model admits Zeno behaviour: a cycle of interactive
/// transitions that can be traversed in zero time (Sec. 4.1 of the paper
/// excludes such models).
class ZenoError : public Error {
 public:
  explicit ZenoError(const std::string& what) : Error(ErrorCode::Zeno, what) {}
};

/// An operation required a uniform model but the argument is not uniform.
class UniformityError : public Error {
 public:
  explicit UniformityError(const std::string& what) : Error(ErrorCode::Uniformity, what) {}
};

/// Failure to parse a model file.  Carries the 1-based input line when the
/// failure is attributable to one (0 = no location).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(ErrorCode::Parse, what) {}
  ParseError(const std::string& what, std::size_t line)
      : Error(ErrorCode::Parse, "line " + std::to_string(line) + ": " + what), line_(line) {}

  /// 1-based line of the offending input, or 0 when not applicable.
  std::size_t line() const { return line_; }

 private:
  std::size_t line_ = 0;
};

/// A numeric-health violation: NaN/Inf reached an iterate or kernel, or a
/// requested accuracy is below what double precision can certify.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(ErrorCode::Numeric, what) {}
};

/// A RunGuard budget fired inside a structural stage that cannot produce a
/// partial result (composition, bisimulation, transform, parsing).  code()
/// is one of Deadline, MemoryBudget, Cancelled.
class BudgetError : public Error {
 public:
  BudgetError(ErrorCode code, const std::string& what) : Error(code, what) {}
};

}  // namespace unicon
