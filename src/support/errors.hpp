// Error types shared across the unicon library.
#pragma once

#include <stdexcept>
#include <string>

namespace unicon {

/// Base class for all unicon errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A model violates a structural precondition (bad state id, negative rate,
/// empty state space, ...).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// The closed model admits Zeno behaviour: a cycle of interactive
/// transitions that can be traversed in zero time (Sec. 4.1 of the paper
/// excludes such models).
class ZenoError : public Error {
 public:
  explicit ZenoError(const std::string& what) : Error(what) {}
};

/// An operation required a uniform model but the argument is not uniform.
class UniformityError : public Error {
 public:
  explicit UniformityError(const std::string& what) : Error(what) {}
};

/// Failure to parse a model file.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

}  // namespace unicon
