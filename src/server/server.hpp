// Newline-delimited JSON session protocol over arbitrary iostreams.
//
// One request object per input line, one response object per output line.
// unicon_serve binds this to stdin/stdout or an AF_UNIX socket; the tests
// drive it over stringstreams.  The session opens with a hello line naming
// the protocol and its version, and every response envelope repeats the
// version, so clients detect schema drift before parsing further.  Schema
// (see README "Server mode"):
//
//   hello    {"hello": "unicon-serve", "version": 1}
//   request  {"id": "q1", "op": "query",
//             "model": {"kind": "uni"|"dft"|"ctmdp"|"ctmc", "source": "...",
//                       "labels": "...", "goal": "goal"},
//             "times": [0.5, 2.0], "objective": "max"|"min",
//             "epsilon": 1e-6, "early": false, "backend": "auto",
//             "threads": 1, "deadline": 0, "cancel_after_polls": 0,
//             "wait": true}
//   response {"id": "q1", "version": 1, "ok": true, "model_hash": "...",
//             "cache_hit": false, "batched_with": 1,
//             "results": [{"time", "value", "residual_bound",
//                          "iterations_planned", "iterations_executed",
//                          "status"}, ...], "seconds": 0.01}
//   failure  {"id": "q1", "version": 1, "ok": false,
//             "error": {"code": "parse", "exit": 13, "message": "..."}}
//
// The "dft" kind carries a Galileo dynamic fault tree as "source"; the
// goal is the top event's "failed" proposition ("goal"/"labels" are
// ignored), and "objective" picks the sup/inf unreliability bound.
//
// The failure "error" object is exactly the unicon_check --json-errors
// schema (stable ErrorCode names and exit numbers).  Other ops: "cancel"
// (field "target" names the query id), "stats", "shutdown".  A query with
// "wait": false is acknowledged immediately ({"accepted": true}) and its
// result arrives as a later line — that is what makes over-the-wire
// cancellation of an in-flight solve possible.  With the default
// "wait": true the session is strictly request/response in order, which
// the golden-replay test relies on.
#pragma once

#include <iosfwd>
#include <string>

namespace unicon::server {

class AnalysisService;

struct SessionOptions {
  /// Fair-share bucket of every query this session submits.
  std::string client;
  /// False (unicon_serve --no-timing) pins "seconds" to 0 in responses so
  /// golden-session replays diff byte-for-byte.
  bool timing = true;
};

/// Serves @p in/@p out until EOF or a "shutdown" op; drains outstanding
/// async queries before returning.  Malformed lines are answered with a
/// failure object, never a dropped connection.
void run_session(std::istream& in, std::ostream& out, AnalysisService& service,
                 const SessionOptions& options = {});

}  // namespace unicon::server
