// Newline-delimited JSON session protocol over arbitrary iostreams.
//
// One request object per input line, one response object per output line.
// unicon_serve binds this to stdin/stdout or an AF_UNIX socket; the tests
// drive it over stringstreams.  The session opens with a hello line naming
// the protocol and its version, and every response envelope repeats the
// version, so clients detect schema drift before parsing further.  Schema
// (see README "Server mode"):
//
//   hello    {"hello": "unicon-serve", "version": 1}
//   request  {"id": "q1", "op": "query",
//             "model": {"kind": "uni"|"dft"|"ctmdp"|"ctmc", "source": "...",
//                       "labels": "...", "goal": "goal"},
//             "times": [0.5, 2.0], "objective": "max"|"min",
//             "epsilon": 1e-6, "early": false, "backend": "auto",
//             "threads": 1, "deadline": 0, "cancel_after_polls": 0,
//             "wait": true}
//   response {"id": "q1", "version": 1, "ok": true, "model_hash": "...",
//             "cache_hit": false, "batched_with": 1,
//             "results": [{"time", "value", "residual_bound",
//                          "iterations_planned", "iterations_executed",
//                          "status"}, ...], "seconds": 0.01}
//   failure  {"id": "q1", "version": 1, "ok": false,
//             "error": {"code": "parse", "exit": 13, "message": "..."}}
//
// The "dft" kind carries a Galileo dynamic fault tree as "source"; the
// goal is the top event's "failed" proposition ("goal"/"labels" are
// ignored), and "objective" picks the sup/inf unreliability bound.
//
// The failure "error" object is exactly the unicon_check --json-errors
// schema (stable ErrorCode names and exit numbers).  Other ops: "cancel"
// (field "target" names the query id), "stats", "shutdown".  A query with
// "wait": false is acknowledged immediately ({"accepted": true}) and its
// result arrives as a later line — that is what makes over-the-wire
// cancellation of an in-flight solve possible.  With the default
// "wait": true the session is strictly request/response in order, which
// the golden-replay test relies on.
#pragma once

#include <csignal>
#include <cstddef>
#include <iosfwd>
#include <string>

namespace unicon::server {

class AnalysisService;

struct SessionOptions {
  /// Fair-share bucket of every query this session submits.
  std::string client;
  /// False (unicon_serve --no-timing) pins "seconds" to 0 in responses so
  /// golden-session replays diff byte-for-byte.
  bool timing = true;
  /// Byte cap on one request line.  The session reads at most this many
  /// bytes before answering Parse and discarding the rest of the line, so
  /// a hostile client can never make the server buffer an unbounded line.
  std::size_t max_line_bytes = std::size_t{8} << 20;
  /// Optional external stop flag (the unicon_serve SIGTERM/SIGINT drain):
  /// once nonzero, the session stops reading new requests, drains its
  /// outstanding async queries and returns.
  const volatile std::sig_atomic_t* stop = nullptr;
  /// Accept chaos fault-plan fields ("fault_alloc_nth",
  /// "fault_poison_step", "fault_throw") in query envelopes.  Off by
  /// default — the allocation fault arms a process-global hook, so on a
  /// shared server these fields are an operator decision (unicon_serve
  /// --enable-fault-plans), never a client's.  When off, a request
  /// carrying any of them is answered with a parse error.
  bool allow_fault_plans = false;
};

/// Serves @p in/@p out until EOF, a "shutdown" op, or the external stop
/// flag; drains outstanding async queries before returning.  Hostile input
/// — malformed JSON, oversized lines, NUL bytes, invalid UTF-8, unknown or
/// mistyped envelope fields — is answered with a typed failure object
/// naming the offending field, never a crash or a dropped connection.
void run_session(std::istream& in, std::ostream& out, AnalysisService& service,
                 const SessionOptions& options = {});

}  // namespace unicon::server
