#include "server/service.hpp"

#include <algorithm>
#include <cstdio>
#include <future>
#include <limits>
#include <new>
#include <optional>
#include <utility>

#include "ctmc/transient.hpp"
#include "server/snapshot.hpp"
#include "support/errors.hpp"

namespace unicon::server {

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(options), cache_(options.cache_budget) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AnalysisService::~AnalysisService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::string AnalysisService::solve_key_of(const QueryRequest& request) {
  std::string key;
  key += model_kind_name(request.kind);
  key += '\n';
  key += request.goal_name;
  key += '\n';
  key += request.source;
  key += '\0';
  key += request.labels;
  char params[128];
  // %a renders epsilon exactly, so keys never merge across precisions
  // that happen to print alike in decimal.
  std::snprintf(params, sizeof params, "\n%d|%a|%d|%s|%s|%d|%u",
                static_cast<int>(request.objective), request.epsilon,
                request.early_termination ? 1 : 0, backend_name(request.backend),
                truncation_name(request.truncation), request.locking ? 1 : 0,
                request.threads);
  key += params;
  return content_hash(key);
}

void AnalysisService::submit(QueryRequest request, Callback done) {
  auto job = std::make_shared<Job>();
  // Per-request execution control pins the guard to this job alone; a
  // fault plan additionally must never share a batch — a chaos-injected
  // fault may only ever damage the answer of the request that asked for
  // it, never a clean identical co-passenger's.
  const bool coalescible = request.deadline == 0.0 && !request.has_fault_plan();
  job->solve_key = coalescible ? solve_key_of(request) : std::string();
  job->request = std::move(request);
  job->done = std::move(done);

  std::optional<QueryResponse> rejection;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    if (stopping_ || draining_ || pending_ >= options_.max_pending) {
      QueryResponse response;
      response.id = job->request.id;
      response.error = ErrorCode::Overloaded;
      response.message = stopping_    ? "service is shutting down"
                         : draining_ ? "service is draining (shutdown in progress)"
                                     : "queue full (" + std::to_string(options_.max_pending) +
                                           " pending requests)";
      response.retry_after_ms = retry_hint_ms_locked();
      ++stats_.rejected;
      ++stats_.completed;
      rejection = std::move(response);
    } else {
      queues_[job->request.client].push_back(job);
      index_[{job->request.client, job->request.id}] = job;
      ++pending_;
    }
  }
  if (rejection.has_value()) {
    job->done(std::move(*rejection));
    return;
  }
  work_ready_.notify_one();
}

QueryResponse AnalysisService::query(QueryRequest request) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  submit(std::move(request), [&promise](QueryResponse r) { promise.set_value(std::move(r)); });
  return future.get();
}

bool AnalysisService::cancel(const std::string& client, const std::string& id) {
  JobPtr queued_job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find({client, id});
    if (it == index_.end()) return false;
    JobPtr job = it->second;
    job->cancelled = true;
    if (job->group != nullptr) {
      // Running: the shared guard may only stop once every coalesced
      // member wants out; the member itself is answered Cancelled by the
      // executing worker either way.
      Group& group = *job->group;
      if (++group.cancelled_members == group.members.size()) group.guard.request_cancel();
      return true;
    }
    // Still queued: unlink and answer directly.
    auto& queue = queues_[job->request.client];
    for (auto q = queue.begin(); q != queue.end(); ++q) {
      if (q->get() == job.get()) {
        queue.erase(q);
        break;
      }
    }
    if (queue.empty()) queues_.erase(job->request.client);
    --pending_;
    index_.erase(it);
    ++stats_.cancelled;
    ++stats_.completed;
    job->delivered = true;
    // A queued cancel can remove the last outstanding job; a drainer
    // blocked in wait_drained() must see that, not sleep forever.
    if (pending_ == 0 && active_ == 0) drained_.notify_all();
    queued_job = std::move(job);
  }
  QueryResponse response;
  response.id = queued_job->request.id;
  response.error = ErrorCode::Cancelled;
  response.message = "cancelled while queued";
  response.seconds = queued_job->queued.seconds();
  queued_job->done(std::move(response));
  return true;
}

std::vector<AnalysisService::JobPtr> AnalysisService::pop_group_locked() {
  std::vector<JobPtr> members;
  if (queues_.empty()) return members;

  // Fair share: rotate to the client after the last one served.
  auto it = queues_.upper_bound(rr_cursor_);
  if (it == queues_.end()) it = queues_.begin();
  rr_cursor_ = it->first;

  JobPtr seed = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  --pending_;
  members.push_back(seed);

  if (seed->solve_key.empty()) return members;

  // Coalesce same-key jobs from every bucket (their results are
  // bit-identical inside one batch solve, see reachability.hpp).
  for (auto bucket = queues_.begin();
       bucket != queues_.end() && members.size() < options_.max_batch;) {
    auto& queue = bucket->second;
    for (auto q = queue.begin(); q != queue.end() && members.size() < options_.max_batch;) {
      if ((*q)->solve_key == seed->solve_key) {
        members.push_back(*q);
        q = queue.erase(q);
        --pending_;
      } else {
        ++q;
      }
    }
    bucket = queue.empty() ? queues_.erase(bucket) : std::next(bucket);
  }
  return members;
}

void AnalysisService::worker_loop() {
  while (true) {
    Group group;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || pending_ > 0; });
      if (pending_ == 0 && stopping_) return;
      group.members = pop_group_locked();
      if (group.members.empty()) continue;
      for (const JobPtr& job : group.members) {
        job->group = &group;
        if (job->cancelled) ++group.cancelled_members;
      }
      if (group.cancelled_members == group.members.size()) group.guard.request_cancel();
      active_ += group.members.size();
      ++stats_.batches;
      stats_.coalesced += group.members.size() - 1;
    }
    execute_group(group);
  }
}

std::uint64_t AnalysisService::retry_hint_ms_locked() const {
  // Expected wait = groups ahead of the newcomer, spread over the worker
  // pool, each costing roughly the recent batch average.  0.1 s stands in
  // until the first batch lands; clamped so a pathological EWMA can never
  // tell clients to hammer the server or to go away for hours.
  const double per_batch = ewma_batch_seconds_ > 0.0 ? ewma_batch_seconds_ : 0.1;
  const double groups_ahead =
      static_cast<double>(pending_ + active_) / static_cast<double>(options_.workers) + 1.0;
  const double ms = per_batch * groups_ahead * 1000.0;
  return static_cast<std::uint64_t>(std::clamp(ms, 100.0, 60000.0));
}

void AnalysisService::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  work_ready_.notify_all();
}

bool AnalysisService::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void AnalysisService::wait_drained() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return pending_ == 0 && active_ == 0; });
}

SnapshotStats AnalysisService::save_cache(const std::string& path) const {
  return save_cache_snapshot(cache_, path);
}

SnapshotStats AnalysisService::load_cache(const std::string& path) {
  return load_cache_snapshot(cache_, path);
}

void AnalysisService::deliver(const JobPtr& job, QueryResponse response) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Exactly-once: if the delivery loop already answered this job and then
    // threw (e.g. a real bad_alloc while serializing a later member's
    // response), the fail_all retry must skip it — re-delivering would
    // underflow active_ and fire the completion callback twice.
    if (job->delivered) return;
    job->delivered = true;
    job->group = nullptr;
    index_.erase({job->request.client, job->request.id});
    ++stats_.completed;
    if (response.error == ErrorCode::Cancelled) ++stats_.cancelled;
    // Retire the job *before* the callback runs: a synchronous submitter
    // that queries stats() right after its answer must see the job gone
    // (pending 0), or session stats lines become racy — the golden replay
    // byte-diffs exactly that.
    --active_;
    if (pending_ == 0 && active_ == 0) drained_.notify_all();
  }
  response.seconds = job->queued.seconds();
  job->done(std::move(response));
}

void AnalysisService::execute_group(Group& group) {
  const QueryRequest& lead = group.members.front()->request;
  Stopwatch batch_watch;

  // Per-request spans live on per-request registries only.
  std::vector<std::optional<Telemetry::Span>> spans(group.members.size());
  for (std::size_t m = 0; m < group.members.size(); ++m) {
    Telemetry* tel = group.members[m]->request.telemetry;
    if (tel != nullptr) {
      spans[m].emplace(tel->span("serve.query"));
      spans[m]->metric("times", group.members[m]->request.times.size());
      spans[m]->metric("coalesced", group.members.size());
    }
  }

  auto fail_all = [&](ErrorCode code, const std::string& message) {
    for (std::size_t m = 0; m < group.members.size(); ++m) {
      QueryResponse response;
      response.id = group.members[m]->request.id;
      response.error = code;
      response.message = message;
      response.batched_with = group.members.size();
      spans[m].reset();
      deliver(group.members[m], std::move(response));
    }
  };

  try {
    // The solver pipeline is only instrumented when it serves exactly one
    // request — a shared registry would mix clients' span trees.
    Telemetry* solo_telemetry = group.members.size() == 1 ? lead.telemetry : nullptr;

    const ModelCache::Resolved resolved =
        cache_.resolve(lead.kind, lead.source, lead.labels, lead.goal_name, &group.guard,
                       solo_telemetry);
    const CachedModel& model = *resolved.model;

    if (lead.fault_throw) {
      // Simulated worker death: the exception unwinds through fail_all, so
      // the request is answered Internal instead of vanishing.  Fault-plan
      // jobs never coalesce, so no clean request shares this fate.
      throw std::runtime_error("fault plan: injected worker fault (fault_throw)");
    }

    if (lead.deadline > 0.0) {
      group.guard.set_deadline(lead.deadline);
    } else if (options_.default_deadline > 0.0) {
      group.guard.set_deadline(options_.default_deadline);
    }
    if (lead.cancel_after_polls > 0) group.guard.cancel_after_polls(lead.cancel_after_polls);
    std::optional<MemoryAccountingScope> alloc_scope;
    if (lead.fault_alloc_nth > 0) {
      // Exclusive process-global scope: concurrent alloc-fault plans throw
      // ModelError here, answered typed via fail_all.
      alloc_scope.emplace(group.guard);
      arm_allocation_failure(lead.fault_alloc_nth);
    }
    if (lead.fault_poison_step > 0) {
      group.guard.set_checkpoint(
          [n = lead.fault_poison_step, count = std::uint64_t{0}](const RunCheckpoint& cp) mutable {
            if (++count == n && !cp.values.empty()) {
              cp.values[0] = std::numeric_limits<double>::quiet_NaN();
            }
          },
          1);
    }

    std::vector<double> merged_times;
    for (const JobPtr& job : group.members) {
      merged_times.insert(merged_times.end(), job->request.times.begin(),
                          job->request.times.end());
    }

    std::vector<HorizonAnswer> answers(merged_times.size());
    if (model.is_ctmc()) {
      TransientOptions options;
      options.epsilon = lead.epsilon;
      options.early_termination = lead.early_termination;
      options.backend = lead.backend;
      options.truncation = lead.truncation;
      options.locking = lead.locking;
      options.threads = lead.threads;
      options.guard = &group.guard;
      options.telemetry = solo_telemetry;
      const auto results =
          timed_reachability_batch(model.chain(), model.goal_for(lead.objective), merged_times,
                                   options);
      for (std::size_t j = 0; j < results.size(); ++j) {
        answers[j] = HorizonAnswer{merged_times[j],
                                   results[j].probabilities[model.chain().initial()],
                                   results[j].residual_bound, results[j].iterations,
                                   results[j].iterations_executed, results[j].status};
      }
    } else {
      TimedReachabilityOptions options;
      options.epsilon = lead.epsilon;
      options.objective = lead.objective;
      options.early_termination = lead.early_termination;
      options.backend = lead.backend;
      options.truncation = lead.truncation;
      options.locking = lead.locking;
      options.threads = lead.threads;
      options.guard = &group.guard;
      options.telemetry = solo_telemetry;
      // Feed the memoized kernel of the backend that will actually run —
      // this is the cache's second dividend beyond skipping the lowering.
      if (resolve_backend(lead.backend) == Backend::Serial) {
        options.discrete_kernel = &model.discrete_kernel(lead.objective);
      } else {
        options.dense_kernel = &model.dense_kernel(lead.objective);
      }
      const auto results = timed_reachability_batch(
          model.ctmdp(), model.goal_for(lead.objective), merged_times, options);
      for (std::size_t j = 0; j < results.size(); ++j) {
        answers[j] = HorizonAnswer{merged_times[j],
                                   results[j].values[model.ctmdp().initial()],
                                   results[j].residual_bound, results[j].iterations_planned,
                                   results[j].iterations_executed, results[j].status};
      }
    }

    // Disarm the injected allocation fault the moment the solve returns:
    // an Nth allocation still pending must never fire inside the delivery
    // loop below, where deliver() has already retired earlier members and
    // the unwinding fail_all would try to answer them a second time.
    if (alloc_scope.has_value()) {
      arm_allocation_failure(0);
      alloc_scope.reset();
    }

    std::size_t offset = 0;
    for (std::size_t m = 0; m < group.members.size(); ++m) {
      const JobPtr& job = group.members[m];
      QueryResponse response;
      response.id = job->request.id;
      response.model_hash = model.canonical_hash();
      response.cache_hit = resolved.hit;
      response.batched_with = group.members.size();
      bool member_cancelled;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        member_cancelled = job->cancelled;
      }
      if (member_cancelled) {
        // The shared solve may have completed regardless (co-passengers
        // kept it alive) — the canceller still gets a Cancelled answer,
        // never another client's timing side effects.
        response.error = ErrorCode::Cancelled;
        response.message = "cancelled mid-flight";
      } else {
        response.results.assign(answers.begin() + static_cast<std::ptrdiff_t>(offset),
                                answers.begin() +
                                    static_cast<std::ptrdiff_t>(offset +
                                                                job->request.times.size()));
      }
      offset += job->request.times.size();
      if (spans[m].has_value()) {
        spans[m]->metric("cache_hit", resolved.hit ? 1 : 0);
        spans[m].reset();
      }
      deliver(job, std::move(response));
    }
  } catch (const Error& e) {
    fail_all(e.code(), e.what());
  } catch (const std::bad_alloc&) {
    fail_all(ErrorCode::OutOfMemory, "allocation failure (std::bad_alloc)");
  } catch (const std::exception& e) {
    fail_all(ErrorCode::Internal, e.what());
  }

  const double elapsed = batch_watch.seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ewma_batch_seconds_ =
        ewma_batch_seconds_ == 0.0 ? elapsed : 0.7 * ewma_batch_seconds_ + 0.3 * elapsed;
  }
}

ServiceStats AnalysisService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats s = stats_;
  s.pending = pending_ + active_;
  s.draining = draining_;
  s.cache = cache_.stats();
  return s;
}

}  // namespace unicon::server
