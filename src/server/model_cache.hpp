// Content-addressed model cache for the analysis server.
//
// A query carries its model *source* (UNI program text, a Galileo DFT, or
// .ctmdp/.tra + .lab file contents) inline; parsing, composition,
// minimization and the Sec. 4.1 transformation dominate small-query
// latency, so the server caches the lowered artifacts keyed by content:
//
//  - Level 1 (source key): a hash of the raw request bytes (kind + source +
//    labels + goal name).  Byte-identical resubmissions hit without any
//    parsing.
//  - Level 2 (canonical key): a hash of the *lowered* model — the
//    solver-ready CTMDP/CTMC serialized through the io library plus the
//    transferred goal masks.  Textually different sources that lower to the
//    same model (whitespace, comments, reordered transition lines)
//    deduplicate onto one entry; a single rate edit changes the canonical
//    bytes and misses.  New source keys are aliased onto the existing
//    canonical entry, so the expensive lowering runs once per *model*, not
//    once per spelling.
//
// Entries are handed out as shared_ptr<const CachedModel>: eviction (LRU
// under a byte budget) only drops the cache's reference, so an in-flight
// query keeps its model and kernels alive — eviction can never corrupt a
// running solve.  Per-objective discrete/dense kernels are memoized lazily
// inside the entry (under its own mutex) and fed into the solvers through
// TimedReachabilityOptions::discrete_kernel/dense_kernel, which is what
// amortizes kernel construction across queries of the same model.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "ctmc/ctmc.hpp"
#include "ctmdp/backend.hpp"
#include "ctmdp/ctmdp.hpp"
#include "ctmdp/reachability.hpp"
#include "support/bit_vector.hpp"
#include "support/run_guard.hpp"

namespace unicon {
class Telemetry;
}

namespace unicon::server {

/// 64-bit FNV-1a over @p bytes, seedable for independent streams.
std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed = 14695981039346656037ull);

/// 32-hex-digit content hash (two independently seeded FNV-1a passes).
/// Not cryptographic — it keys a trusted-process cache, not an integrity
/// check; 128 bits keep accidental collisions out of reach.
std::string content_hash(std::string_view bytes);

enum class ModelKind : std::uint8_t { Uni, Dft, CtmdpFile, CtmcFile };

const char* model_kind_name(ModelKind kind);

/// One lowered model: solver-ready representation, transferred goal masks,
/// and lazily memoized per-objective kernels.  Immutable after
/// construction except for the kernel memo (guarded by kernel_mutex_), so
/// concurrent queries may share an entry freely.
class CachedModel {
 public:
  ModelKind kind() const { return kind_; }
  const std::string& canonical_hash() const { return canonical_hash_; }

  /// The CTMDP (Uni after transform, or CtmdpFile).  Throws ModelError for
  /// CtmcFile entries.
  const Ctmdp& ctmdp() const;
  /// The CTMC (CtmcFile entries only).
  const Ctmc& chain() const;
  bool is_ctmc() const { return kind_ == ModelKind::CtmcFile; }

  /// Goal mask for an objective: the existential transfer for Maximize,
  /// the universal transfer for Minimize (identical for file-based models,
  /// where the .lab mask applies to both objectives — Sec. 4.1 transfer
  /// only concerns the uIMC routes, Uni and Dft).
  const BitVector& goal_for(Objective objective) const {
    const bool transferred = kind_ == ModelKind::Uni || kind_ == ModelKind::Dft;
    return objective == Objective::Minimize && transferred ? goal_universal_ : goal_;
  }

  /// Memoized kernels matching (ctmdp, goal_for(objective)); built on
  /// first use under the entry's mutex.  CTMDP entries only.
  const DiscreteKernel& discrete_kernel(Objective objective) const;
  const DenseKernel& dense_kernel(Objective objective) const;

  /// Resident estimate: the lowered model plus any memoized kernels.
  std::size_t bytes() const {
    return base_bytes_ + kernel_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend class ModelCache;
  CachedModel() = default;

  ModelKind kind_ = ModelKind::Uni;
  std::string canonical_hash_;
  std::optional<Ctmdp> ctmdp_;
  std::optional<Ctmc> chain_;
  BitVector goal_;
  BitVector goal_universal_;
  std::size_t base_bytes_ = 0;

  mutable std::mutex kernel_mutex_;
  mutable std::unique_ptr<DiscreteKernel> discrete_[2];  // [objective]
  mutable std::unique_ptr<DenseKernel> dense_[2];
  mutable std::atomic<std::size_t> kernel_bytes_{0};
};

struct CacheStats {
  std::uint64_t source_hits = 0;     ///< level-1 byte-identical hits
  std::uint64_t canonical_hits = 0;  ///< level-2 dedups (lowered, then aliased)
  std::uint64_t misses = 0;          ///< fresh entries inserted
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t resident_bytes = 0;
};

/// Outcome of a snapshot save or load (see snapshot.hpp for the format).
/// A load never throws on corrupt input: every record it can authenticate
/// is restored, every record it cannot is counted and skipped, and a
/// truncated / unparseable stream simply ends recovery early — the worst
/// corruption degrades to a cold start, never to a wrong cache entry.
struct SnapshotStats {
  std::size_t entries_written = 0;  ///< save: records emitted
  std::size_t entries_loaded = 0;   ///< load: entries restored into the cache
  std::size_t aliases_loaded = 0;   ///< load: source-key aliases restored
  std::size_t entries_corrupt = 0;  ///< load: records failing checksum/parse
  bool truncated = false;           ///< load: stream ended before the `end` marker
};

class ModelCache {
 public:
  /// @p byte_budget caps the resident estimate; 0 means unbounded.
  explicit ModelCache(std::uint64_t byte_budget = 0) : budget_(byte_budget) {}

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  struct Resolved {
    std::shared_ptr<const CachedModel> model;
    bool hit = false;  ///< either cache level (no lowering ran, or it was discarded)
  };

  /// Resolves a request's model source, lowering and inserting on a miss.
  /// @p labels is the .lab file content (file kinds; ignored for Uni),
  /// @p goal_name the UNI proposition to transfer (Uni only).  Lowering
  /// runs outside the cache lock; @p guard aborts it via BudgetError and
  /// @p telemetry observes its stages (both may be null).  Throws the
  /// lowering pipeline's typed errors (Parse/Model/Zeno/Uniformity/...).
  Resolved resolve(ModelKind kind, const std::string& source, const std::string& labels,
                   const std::string& goal_name, RunGuard* guard = nullptr,
                   Telemetry* telemetry = nullptr);

  CacheStats stats() const;

  /// Serializes every resident entry (plus its source-key aliases) in the
  /// checksummed `unicon-cache-v1` format.  Deterministic: entries are
  /// emitted in canonical-hash order, so identical cache contents produce
  /// byte-identical snapshots.  Implemented in snapshot.cpp.
  SnapshotStats save_snapshot(std::ostream& out) const;

  /// Restores entries from a `unicon-cache-v1` stream.  Tolerant of
  /// corruption: records with bad checksums or unparseable bodies are
  /// skipped (counted in entries_corrupt), a torn tail sets `truncated`,
  /// and already-resident entries are never overwritten.  Never throws on
  /// malformed input.  Implemented in snapshot.cpp.
  SnapshotStats load_snapshot(std::istream& in);

 private:
  struct Entry {
    std::shared_ptr<CachedModel> model;
    std::uint64_t last_use = 0;
  };

  /// Drops least-recently-used entries until the resident estimate fits
  /// the budget (mutex_ held).  @p keep is never evicted — the entry the
  /// current resolve returns must stay mapped even if it alone exceeds
  /// the budget.
  void evict_locked(const CachedModel* keep);
  std::size_t resident_locked() const;

  mutable std::mutex mutex_;
  std::uint64_t budget_ = 0;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  std::unordered_map<std::string, std::string> source_to_canonical_;
  std::unordered_map<std::string, Entry> by_canonical_;
};

}  // namespace unicon::server
