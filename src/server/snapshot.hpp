// Crash-safe persistence for the server model cache.
//
// Format `unicon-cache-v1` (text, one snapshot per file):
//
//   unicon-cache-v1
//   entry <canonical_hash:32hex> <body_bytes:dec> <checksum:16hex>
//   <body_bytes bytes of record body, ending in '\n'>
//   ... more `entry` records ...
//   end <record_count:dec>
//
// Each record body is self-describing:
//
//   kind <uni|dft|ctmdp|ctmc>
//   sources <n>
//   <n lines of 32-hex source keys aliased onto this entry>
//   goal <'0'/'1' mask, one char per state>
//   ugoal <'0'/'1' universal-goal mask>
//   model
//   <the lowered model in io::write_ctmdp / io::write_ctmc text form>
//
// The checksum is FNV-1a 64 over `<canonical_hash>\n<body>`, so a flipped
// bit in either the header's hash field or the body is detected.  Because
// io writes doubles with setprecision(17) they round-trip bitwise, which is
// what makes a warm-started server answer bit-identically to the process
// that wrote the snapshot.
//
// Recovery semantics (ModelCache::load_snapshot): the declared body length
// lets the loader skip a checksum-failed record and resync at the next
// `entry` line, so one torn record does not discard the rest of the file; a
// truncated tail (crash mid-write of a non-atomic copy) ends recovery with
// `truncated` set.  Corruption is never fatal — the worst case is a cold
// cache.  save_cache_snapshot below writes to `<path>.tmp` and renames, so
// a crash (even kill -9) mid-save can never tear the published file.
#pragma once

#include <string>

#include "server/model_cache.hpp"

namespace unicon::server {

inline constexpr const char* kCacheSnapshotMagic = "unicon-cache-v1";

/// Atomically writes @p cache to @p path (write `<path>.tmp`, fsync-free
/// rename).  Throws ModelError when the temp file cannot be written or the
/// rename fails; the temp file is removed on failure.
SnapshotStats save_cache_snapshot(const ModelCache& cache, const std::string& path);

/// Warm-starts @p cache from @p path.  A missing file is a normal cold
/// start (all-zero stats); a corrupt file restores whatever authenticates
/// (see ModelCache::load_snapshot).  Never throws on bad content.
SnapshotStats load_cache_snapshot(ModelCache& cache, const std::string& path);

}  // namespace unicon::server
