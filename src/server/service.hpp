// The analysis service: a fair-share job queue over the model cache and
// the multi-horizon batch solvers.
//
// Queries arrive asynchronously (submit + completion callback).  A worker
// pool drains one *batch group* at a time:
//
//  - Fairness: pending jobs are bucketed per client and dispatched
//    round-robin across the buckets, so a client flooding the queue cannot
//    starve the others; within a bucket, FIFO.
//  - Coalescing: when a job is dispatched, other pending jobs with the
//    same solve key (model source + goal + objective + epsilon + early +
//    backend + threads) are pulled into the same group — regardless of
//    owning client — and answered by ONE timed_reachability_batch call
//    over the concatenated time bounds.  The batch solver guarantees every
//    horizon is bit-identical to its independent single-t solve, so
//    coalescing is observably invisible except for latency.  Jobs carrying
//    per-request execution control (deadline or a fault plan) never
//    coalesce: their guard must govern exactly one request.
//  - Admission control: at most max_pending jobs queue; beyond that submit
//    answers immediately with ErrorCode::Overloaded (stable code 24).
//  - Cancellation: cancel(client, id) removes a queued job outright
//    (answered with Cancelled) or flags a running group member.  The
//    group's RunGuard is cancelled only once EVERY member asked to stop —
//    one client cancelling must not abort a coalesced co-passenger — and a
//    member flagged mid-flight is answered Cancelled even if the shared
//    solve ran to completion.
//
// Per-request observability: a request may carry its own Telemetry
// registry; the service opens a "serve.query" span on it (resolve +
// solve metrics).  The solver pipeline itself is only instrumented when
// the group has a single member — a shared registry across coalesced
// requests would bleed one client's spans into another's.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ctmdp/reachability.hpp"
#include "server/model_cache.hpp"
#include "support/backend.hpp"
#include "support/run_guard.hpp"
#include "support/telemetry.hpp"

namespace unicon::server {

struct QueryRequest {
  std::string client;  ///< fair-share bucket ("" = anonymous shared bucket)
  std::string id;      ///< echoed back; cancel() target, unique per client
  ModelKind kind = ModelKind::Uni;
  std::string source;  ///< model text (UNI program or .ctmdp/.tra content)
  std::string labels;  ///< .lab content (file kinds only)
  std::string goal_name = "goal";  ///< proposition to transfer (Uni only)
  std::vector<double> times;       ///< time bounds, answered in this order
  Objective objective = Objective::Maximize;
  double epsilon = 1e-6;
  bool early_termination = false;
  Backend backend = Backend::Auto;
  /// Truncation-bound provider for the solve (part of the coalescing key:
  /// different providers may stop at different steps, so they must not
  /// share a batch).
  Truncation truncation = Truncation::Auto;
  /// On-the-fly convergence locking.  Values are bit-identical either
  /// way, but iteration counts can differ (exact-fixpoint break), so the
  /// flag is part of the coalescing key too.
  bool locking = true;
  unsigned threads = 1;
  /// Per-request wall-clock budget in seconds (0 = none).  Disables
  /// coalescing for this job.
  double deadline = 0.0;
  /// Fault plan: cancel the solve at the n-th guard poll (0 = off).
  /// Disables coalescing.
  std::uint64_t cancel_after_polls = 0;
  /// Fault plan: the n-th accounted allocation during the solve throws
  /// std::bad_alloc (0 = off).  Disables coalescing.  Accounting scopes
  /// are process-global and exclusive, so two concurrent alloc-fault
  /// requests collide (the loser is answered with ErrorCode::Model) —
  /// the chaos harness runs them one at a time.
  std::uint64_t fault_alloc_nth = 0;
  /// Fault plan: poison the live iterate with NaN at the n-th checkpoint
  /// (1-based; 0 = off).  Disables coalescing.  Exercises the solver's
  /// NaN containment — a poisoned request must fail typed (Numeric) or
  /// surface the damage in its own answer, never a co-passenger's.
  std::uint64_t fault_poison_step = 0;
  /// Fault plan: the worker executing this request throws after resolve,
  /// before the solve (simulated worker death; answered Internal).
  /// Disables coalescing.
  bool fault_throw = false;
  /// Optional per-request registry; never shared across requests.
  Telemetry* telemetry = nullptr;

  /// True when any chaos fault plan is armed.  Such a request must never
  /// coalesce: an injected fault may only ever damage its own answer.
  bool has_fault_plan() const {
    return cancel_after_polls > 0 || fault_alloc_nth > 0 || fault_poison_step > 0 || fault_throw;
  }
};

struct HorizonAnswer {
  double time = 0.0;
  double value = 0.0;  ///< probability at the model's initial state
  double residual_bound = 0.0;
  std::uint64_t iterations_planned = 0;
  std::uint64_t iterations_executed = 0;
  RunStatus status = RunStatus::Converged;
};

struct QueryResponse {
  std::string id;
  ErrorCode error = ErrorCode::Ok;
  std::string message;     ///< non-empty iff error != Ok
  std::string model_hash;  ///< canonical content hash (empty on early failure)
  bool cache_hit = false;
  /// Overloaded answers only: suggested client back-off, derived from the
  /// queue depth and an EWMA of recent batch solve times (0 otherwise).
  std::uint64_t retry_after_ms = 0;
  /// Jobs answered by the same batch solve (>= 1; 1 = not coalesced).
  std::size_t batched_with = 0;
  std::vector<HorizonAnswer> results;  ///< per requested time, input order
  double seconds = 0.0;                ///< queue + solve wall time
};

struct ServiceOptions {
  unsigned workers = 1;
  std::size_t max_pending = 256;
  std::size_t max_batch = 16;      ///< coalesced jobs per dispatch, incl. the seed
  std::uint64_t cache_budget = 0;  ///< model-cache byte budget (0 = unbounded)
  /// Safety net applied to every group that does not carry its own
  /// deadline (seconds; 0 = off).  Keeps a hostile request with an
  /// absurd horizon or epsilon from pinning a worker forever; applied at
  /// execution time, so it does not perturb coalescing keys.
  double default_deadline = 0.0;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< responses delivered, error or not
  std::uint64_t rejected = 0;    ///< admission-control Overloaded answers
  std::uint64_t cancelled = 0;   ///< jobs answered Cancelled via cancel()
  std::uint64_t batches = 0;     ///< solver dispatches
  std::uint64_t coalesced = 0;   ///< jobs that rode along in a shared batch
  std::size_t pending = 0;       ///< queued + executing jobs right now
  bool draining = false;         ///< begin_drain() was called
  CacheStats cache;
};

class AnalysisService {
 public:
  explicit AnalysisService(ServiceOptions options = {});
  /// Drains the queue (every pending job is answered) and joins workers.
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  using Callback = std::function<void(QueryResponse)>;

  /// Enqueues a query; @p done fires exactly once, from a worker thread
  /// (or inline on admission rejection).  Never throws.
  void submit(QueryRequest request, Callback done);

  /// Cancels the pending or running job (client, id).  Returns false when
  /// no such job is in flight (already answered, or never submitted).
  bool cancel(const std::string& client, const std::string& id);

  /// Synchronous convenience wrapper around submit().
  QueryResponse query(QueryRequest request);

  /// Enters drain mode: new submissions are refused with Overloaded
  /// ("service is draining"), queued and in-flight jobs still complete.
  /// Irreversible; used by the SIGTERM/SIGINT shutdown path.
  void begin_drain();
  bool draining() const;
  /// Blocks until no job is queued or executing.  Call after
  /// begin_drain() — otherwise new work may arrive while waiting.
  void wait_drained();

  /// Persists the model cache to @p path atomically (unicon-cache-v1,
  /// write-temp-then-rename; see snapshot.hpp).  Throws ModelError on I/O
  /// failure.  Safe to call while queries are running.
  SnapshotStats save_cache(const std::string& path) const;
  /// Warm-starts the model cache from @p path; missing or corrupt files
  /// degrade gracefully (see ModelCache::load_snapshot).  Never throws.
  SnapshotStats load_cache(const std::string& path);

  ServiceStats stats() const;

 private:
  struct Group;

  struct Job {
    QueryRequest request;
    Callback done;
    std::string solve_key;  ///< empty = never coalesce
    bool cancelled = false;
    bool delivered = false;  ///< answered; deliver() is exactly-once
    Group* group = nullptr;  ///< non-null while executing
    Stopwatch queued;
  };
  using JobPtr = std::shared_ptr<Job>;

  struct Group {
    std::vector<JobPtr> members;
    RunGuard guard;
    std::size_t cancelled_members = 0;
  };

  void worker_loop();
  /// Pops the next group (fair-share seed + coalesced riders).  Requires
  /// mutex_; returns an empty group when the queue is empty.
  std::vector<JobPtr> pop_group_locked();
  void execute_group(Group& group);
  void deliver(const JobPtr& job, QueryResponse response);
  static std::string solve_key_of(const QueryRequest& request);
  /// Suggested client back-off for an Overloaded answer: the queue depth
  /// in worker-sized groups times the EWMA batch solve time.  Requires
  /// mutex_.
  std::uint64_t retry_hint_ms_locked() const;

  ServiceOptions options_;
  ModelCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable drained_;
  bool stopping_ = false;
  bool draining_ = false;
  std::size_t pending_ = 0;
  std::size_t active_ = 0;  ///< jobs currently inside execute_group
  /// EWMA of recent batch solve wall times (seconds) feeding the
  /// Overloaded retry hint; 0 until the first batch completes.
  double ewma_batch_seconds_ = 0.0;
  std::map<std::string, std::deque<JobPtr>> queues_;  ///< per-client FIFO
  std::string rr_cursor_;                             ///< last client served
  std::map<std::pair<std::string, std::string>, JobPtr> index_;  ///< (client, id)
  ServiceStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace unicon::server
