#include "server/server.hpp"

#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>

#include "support/json.hpp"
#include "server/service.hpp"
#include "support/backend.hpp"
#include "support/errors.hpp"

namespace unicon::server {

namespace {

/// Serialized line output plus the outstanding-async bookkeeping shared
/// with completion callbacks (which run on service worker threads).
struct Session {
  Session(std::ostream& o, SessionOptions opts) : out(o), options(std::move(opts)) {}

  std::ostream& out;
  SessionOptions options;
  std::mutex mutex;
  std::condition_variable idle;
  std::size_t outstanding = 0;

  void write_line(const Json& response) {
    std::lock_guard<std::mutex> lock(mutex);
    out << response.dump() << '\n';
    out.flush();
  }

  void finish_async(const Json& response) {
    std::lock_guard<std::mutex> lock(mutex);
    out << response.dump() << '\n';
    out.flush();
    --outstanding;
    idle.notify_all();
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock, [this] { return outstanding == 0; });
  }
};

/// Wire-protocol version, echoed in the hello line and every response
/// envelope so clients can detect schema drift before parsing further.
/// Bump when a response field changes shape or meaning.
constexpr int kProtocolVersion = 1;

/// Starts a response envelope: id first, then the protocol version.
Json envelope(const std::string& id) {
  Json response;
  response.set("id", id);
  response.set("version", kProtocolVersion);
  return response;
}

Json error_json(const std::string& id, ErrorCode code, const std::string& message) {
  Json error;
  error.set("code", error_code_name(code));
  error.set("exit", static_cast<int>(code));
  error.set("message", message);
  Json response = envelope(id);
  response.set("ok", false);
  response.set("error", std::move(error));
  return response;
}

Json response_json(const QueryResponse& r, bool timing) {
  if (r.error != ErrorCode::Ok) return error_json(r.id, r.error, r.message);
  Json response = envelope(r.id);
  response.set("ok", true);
  response.set("model_hash", r.model_hash);
  response.set("cache_hit", r.cache_hit);
  response.set("batched_with", static_cast<std::uint64_t>(r.batched_with));
  JsonArray results;
  results.reserve(r.results.size());
  for (const HorizonAnswer& h : r.results) {
    Json item;
    item.set("time", h.time);
    item.set("value", h.value);
    item.set("residual_bound", h.residual_bound);
    item.set("iterations_planned", h.iterations_planned);
    item.set("iterations_executed", h.iterations_executed);
    item.set("status", run_status_name(h.status));
    results.push_back(std::move(item));
  }
  response.set("results", Json(std::move(results)));
  response.set("seconds", timing ? r.seconds : 0.0);
  return response;
}

ModelKind parse_kind(const std::string& name) {
  if (name == "uni") return ModelKind::Uni;
  if (name == "dft") return ModelKind::Dft;
  if (name == "ctmdp") return ModelKind::CtmdpFile;
  if (name == "ctmc") return ModelKind::CtmcFile;
  throw ParseError("unknown model kind '" + name + "' (expected uni, dft, ctmdp or ctmc)");
}

QueryRequest parse_query(const Json& request, const SessionOptions& options) {
  QueryRequest query;
  query.client = options.client;
  query.id = request.get_string("id", "");

  const Json* model = request.find("model");
  if (model == nullptr) throw ParseError("query without 'model' object");
  query.kind = parse_kind(model->get_string("kind", "uni"));
  query.source = model->get_string("source", "");
  if (query.source.empty()) throw ParseError("query without model 'source'");
  query.labels = model->get_string("labels", "");
  query.goal_name = model->get_string("goal", "goal");

  if (const Json* times = request.find("times"); times != nullptr) {
    for (const Json& t : times->as_array()) query.times.push_back(t.as_number());
  } else if (const Json* time = request.find("time"); time != nullptr) {
    query.times.push_back(time->as_number());
  } else {
    throw ParseError("query without 'times' (or 'time')");
  }

  const std::string objective = request.get_string("objective", "max");
  if (objective == "max") {
    query.objective = Objective::Maximize;
  } else if (objective == "min") {
    query.objective = Objective::Minimize;
  } else {
    throw ParseError("unknown objective '" + objective + "' (expected max or min)");
  }

  query.epsilon = request.get_number("epsilon", 1e-6);
  if (!(query.epsilon > 0.0)) throw ParseError("epsilon must be positive");
  query.early_termination = request.get_bool("early", false);
  query.backend = parse_backend(request.get_string("backend", "auto"));
  query.threads = static_cast<unsigned>(request.get_number("threads", 1.0));
  query.deadline = request.get_number("deadline", 0.0);
  if (query.deadline < 0.0) throw ParseError("deadline must be non-negative");
  query.cancel_after_polls =
      static_cast<std::uint64_t>(request.get_number("cancel_after_polls", 0.0));
  return query;
}

Json stats_json(const ServiceStats& stats) {
  Json cache;
  cache.set("source_hits", stats.cache.source_hits);
  cache.set("canonical_hits", stats.cache.canonical_hits);
  cache.set("misses", stats.cache.misses);
  cache.set("evictions", stats.cache.evictions);
  cache.set("entries", static_cast<std::uint64_t>(stats.cache.entries));
  cache.set("resident_bytes", static_cast<std::uint64_t>(stats.cache.resident_bytes));
  Json s;
  s.set("submitted", stats.submitted);
  s.set("completed", stats.completed);
  s.set("rejected", stats.rejected);
  s.set("cancelled", stats.cancelled);
  s.set("batches", stats.batches);
  s.set("coalesced", stats.coalesced);
  s.set("cache", std::move(cache));
  return s;
}

}  // namespace

void run_session(std::istream& in, std::ostream& out, AnalysisService& service,
                 const SessionOptions& options) {
  Session session{out, options};
  // Hello line: the first thing a client reads names the protocol and its
  // version, so schema drift is detectable before any request is sent.
  {
    Json hello;
    hello.set("hello", "unicon-serve");
    hello.set("version", kProtocolVersion);
    session.write_line(hello);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string id;
    try {
      const Json request = Json::parse(line);
      id = request.get_string("id", "");
      const std::string op = request.get_string("op", "query");

      if (op == "query") {
        QueryRequest query = parse_query(request, options);
        const bool wait = request.get_bool("wait", true);
        if (wait) {
          session.write_line(response_json(service.query(std::move(query)), options.timing));
        } else {
          {
            std::lock_guard<std::mutex> lock(session.mutex);
            ++session.outstanding;
          }
          const bool timing = options.timing;
          service.submit(std::move(query), [&session, timing](QueryResponse r) {
            session.finish_async(response_json(r, timing));
          });
          Json accepted = envelope(id);
          accepted.set("ok", true);
          accepted.set("accepted", true);
          session.write_line(accepted);
        }
      } else if (op == "cancel") {
        const std::string target = request.get_string("target", "");
        const bool cancelled = service.cancel(options.client, target);
        Json response = envelope(id);
        response.set("ok", true);
        response.set("cancelled", cancelled);
        session.write_line(response);
      } else if (op == "stats") {
        Json response = envelope(id);
        response.set("ok", true);
        response.set("stats", stats_json(service.stats()));
        session.write_line(response);
      } else if (op == "shutdown") {
        session.drain();
        Json response = envelope(id);
        response.set("ok", true);
        response.set("bye", true);
        session.write_line(response);
        return;
      } else {
        throw ParseError("unknown op '" + op + "'");
      }
    } catch (const Error& e) {
      session.write_line(error_json(id, e.code(), e.what()));
    } catch (const std::bad_alloc&) {
      session.write_line(
          error_json(id, ErrorCode::OutOfMemory, "allocation failure (std::bad_alloc)"));
    } catch (const std::exception& e) {
      session.write_line(error_json(id, ErrorCode::Internal, e.what()));
    }
  }
  session.drain();
}

}  // namespace unicon::server
