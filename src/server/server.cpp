#include "server/server.hpp"

#include <cmath>
#include <condition_variable>
#include <initializer_list>
#include <istream>
#include <mutex>
#include <ostream>
#include <string_view>

#include "support/json.hpp"
#include "server/service.hpp"
#include "support/backend.hpp"
#include "support/errors.hpp"

namespace unicon::server {

namespace {

/// Serialized line output plus the outstanding-async bookkeeping shared
/// with completion callbacks (which run on service worker threads).
struct Session {
  Session(std::ostream& o, SessionOptions opts) : out(o), options(std::move(opts)) {}

  std::ostream& out;
  SessionOptions options;
  std::mutex mutex;
  std::condition_variable idle;
  std::size_t outstanding = 0;

  void write_line(const Json& response) {
    std::lock_guard<std::mutex> lock(mutex);
    out << response.dump() << '\n';
    out.flush();
  }

  void finish_async(const Json& response) {
    std::lock_guard<std::mutex> lock(mutex);
    out << response.dump() << '\n';
    out.flush();
    --outstanding;
    idle.notify_all();
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock, [this] { return outstanding == 0; });
  }
};

/// Wire-protocol version, echoed in the hello line and every response
/// envelope so clients can detect schema drift before parsing further.
/// Bump when a response field changes shape or meaning.
constexpr int kProtocolVersion = 1;

/// Starts a response envelope: id first, then the protocol version.
Json envelope(const std::string& id) {
  Json response;
  response.set("id", id);
  response.set("version", kProtocolVersion);
  return response;
}

Json error_json(const std::string& id, ErrorCode code, const std::string& message,
                std::uint64_t retry_after_ms = 0) {
  Json error;
  error.set("code", error_code_name(code));
  error.set("exit", static_cast<int>(code));
  error.set("message", message);
  // Overloaded answers carry the service's back-off hint so a well-behaved
  // client knows when the queue is expected to have room again.
  if (retry_after_ms > 0) error.set("retry_after_ms", retry_after_ms);
  Json response = envelope(id);
  response.set("ok", false);
  response.set("error", std::move(error));
  return response;
}

Json response_json(const QueryResponse& r, bool timing) {
  if (r.error != ErrorCode::Ok) return error_json(r.id, r.error, r.message, r.retry_after_ms);
  Json response = envelope(r.id);
  response.set("ok", true);
  response.set("model_hash", r.model_hash);
  response.set("cache_hit", r.cache_hit);
  response.set("batched_with", static_cast<std::uint64_t>(r.batched_with));
  JsonArray results;
  results.reserve(r.results.size());
  for (const HorizonAnswer& h : r.results) {
    Json item;
    item.set("time", h.time);
    item.set("value", h.value);
    item.set("residual_bound", h.residual_bound);
    item.set("iterations_planned", h.iterations_planned);
    item.set("iterations_executed", h.iterations_executed);
    item.set("status", run_status_name(h.status));
    results.push_back(std::move(item));
  }
  response.set("results", Json(std::move(results)));
  response.set("seconds", timing ? r.seconds : 0.0);
  return response;
}

ModelKind parse_kind(const std::string& name) {
  if (name == "uni") return ModelKind::Uni;
  if (name == "dft") return ModelKind::Dft;
  if (name == "ctmdp") return ModelKind::CtmdpFile;
  if (name == "ctmc") return ModelKind::CtmcFile;
  throw ParseError("unknown model kind '" + name + "' (expected uni, dft, ctmdp or ctmc)");
}

// --- strict envelope validation -----------------------------------------
//
// Every field is checked individually so a hostile or buggy client gets a
// diagnostic naming the exact field and the type mismatch, and unknown
// fields are rejected outright (a typoed "epsiln" must not silently run
// with the default).  @p path prefixes nested objects ("model.").

const char* json_type_name(Json::Type type) {
  switch (type) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "a boolean";
    case Json::Type::Number: return "a number";
    case Json::Type::String: return "a string";
    case Json::Type::Array: return "an array";
    case Json::Type::Object: return "an object";
  }
  return "?";
}

[[noreturn]] void field_type_error(const std::string& path, const std::string& key,
                                   const char* want, const Json& got) {
  throw ParseError("field '" + path + key + "': expected " + want + ", got " +
                   json_type_name(got.type()));
}

std::string field_string(const Json& obj, const std::string& path, const std::string& key,
                         const std::string& fallback) {
  const Json* value = obj.find(key);
  if (value == nullptr || value->is_null()) return fallback;
  if (!value->is_string()) field_type_error(path, key, "a string", *value);
  return value->as_string();
}

bool field_bool(const Json& obj, const std::string& path, const std::string& key, bool fallback) {
  const Json* value = obj.find(key);
  if (value == nullptr || value->is_null()) return fallback;
  if (!value->is_bool()) field_type_error(path, key, "a boolean", *value);
  return value->as_bool();
}

double field_number(const Json& obj, const std::string& path, const std::string& key,
                    double fallback) {
  const Json* value = obj.find(key);
  if (value == nullptr || value->is_null()) return fallback;
  if (!value->is_number()) field_type_error(path, key, "a number", *value);
  const double v = value->as_number();
  if (!std::isfinite(v)) {
    throw ParseError("field '" + path + key + "': must be finite");
  }
  return v;
}

std::uint64_t field_count(const Json& obj, const std::string& path, const std::string& key,
                          std::uint64_t fallback, std::uint64_t max) {
  const Json* value = obj.find(key);
  if (value == nullptr || value->is_null()) return fallback;
  if (!value->is_number()) field_type_error(path, key, "a non-negative integer", *value);
  const double v = value->as_number();
  if (!std::isfinite(v) || v < 0.0 || v != std::floor(v)) {
    throw ParseError("field '" + path + key + "': expected a non-negative integer");
  }
  if (v > static_cast<double>(max)) {
    throw ParseError("field '" + path + key + "': exceeds the limit of " + std::to_string(max));
  }
  return static_cast<std::uint64_t>(v);
}

void reject_unknown_fields(const Json& obj, const std::string& path,
                           std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : obj.as_object()) {
    bool recognized = false;
    for (const std::string_view k : known) {
      if (key == k) {
        recognized = true;
        break;
      }
    }
    if (!recognized) {
      throw ParseError("unknown field '" + path + key + "'");
    }
  }
}

/// Cap on time bounds per query: a million-element "times" array must fail
/// fast, not allocate a million-horizon batch plan.
constexpr std::size_t kMaxTimesPerQuery = 10000;

QueryRequest parse_query(const Json& request, const SessionOptions& options) {
  reject_unknown_fields(request, "",
                        {"id", "op", "model", "times", "time", "objective", "epsilon", "early",
                         "backend", "truncation", "locking", "threads", "deadline",
                         "cancel_after_polls", "fault_alloc_nth", "fault_poison_step",
                         "fault_throw", "wait"});
  QueryRequest query;
  query.client = options.client;
  query.id = field_string(request, "", "id", "");

  const Json* model = request.find("model");
  if (model == nullptr) throw ParseError("query without 'model' object");
  if (!model->is_object()) field_type_error("", "model", "an object", *model);
  reject_unknown_fields(*model, "model.", {"kind", "source", "labels", "goal"});
  query.kind = parse_kind(field_string(*model, "model.", "kind", "uni"));
  query.source = field_string(*model, "model.", "source", "");
  if (query.source.empty()) throw ParseError("query without model 'source'");
  query.labels = field_string(*model, "model.", "labels", "");
  query.goal_name = field_string(*model, "model.", "goal", "goal");

  if (const Json* times = request.find("times"); times != nullptr) {
    if (!times->is_array()) field_type_error("", "times", "an array", *times);
    if (times->as_array().size() > kMaxTimesPerQuery) {
      throw ParseError("field 'times': holds " + std::to_string(times->as_array().size()) +
                       " bounds, limit is " + std::to_string(kMaxTimesPerQuery));
    }
    std::size_t index = 0;
    for (const Json& t : times->as_array()) {
      if (!t.is_number()) {
        throw ParseError("field 'times[" + std::to_string(index) + "]': expected a number, got " +
                         json_type_name(t.type()));
      }
      const double bound = t.as_number();
      if (!std::isfinite(bound) || bound < 0.0) {
        throw ParseError("field 'times[" + std::to_string(index) +
                         "]': time bound must be finite and non-negative");
      }
      query.times.push_back(bound);
      ++index;
    }
  } else if (const Json* time = request.find("time"); time != nullptr) {
    const double bound = field_number(request, "", "time", 0.0);
    if (!(bound >= 0.0)) throw ParseError("field 'time': time bound must be non-negative");
    query.times.push_back(bound);
  } else {
    throw ParseError("query without 'times' (or 'time')");
  }

  const std::string objective = field_string(request, "", "objective", "max");
  if (objective == "max") {
    query.objective = Objective::Maximize;
  } else if (objective == "min") {
    query.objective = Objective::Minimize;
  } else {
    throw ParseError("unknown objective '" + objective + "' (expected max or min)");
  }

  query.epsilon = field_number(request, "", "epsilon", 1e-6);
  if (!(query.epsilon > 0.0)) throw ParseError("epsilon must be positive");
  query.early_termination = field_bool(request, "", "early", false);
  query.backend = parse_backend(field_string(request, "", "backend", "auto"));
  query.truncation = parse_truncation(field_string(request, "", "truncation", "auto"));
  query.locking = field_bool(request, "", "locking", true);
  query.threads = static_cast<unsigned>(field_count(request, "", "threads", 1, 4096));
  query.deadline = field_number(request, "", "deadline", 0.0);
  if (query.deadline < 0.0) throw ParseError("deadline must be non-negative");
  query.cancel_after_polls =
      field_count(request, "", "cancel_after_polls", 0, std::uint64_t{1} << 53);
  // Fault plans are an operator opt-in, not a client right: the alloc
  // fault arms a process-global hook, so an untrusted client on a shared
  // server must not be able to send one at all.  The fields stay in the
  // known list above so the diagnostic names the gate, not a typo.
  if (!options.allow_fault_plans) {
    for (const char* key : {"fault_alloc_nth", "fault_poison_step", "fault_throw"}) {
      if (request.find(key) != nullptr) {
        throw ParseError(std::string("field '") + key +
                         "': fault plans are disabled on this server "
                         "(start unicon_serve with --enable-fault-plans)");
      }
    }
  }
  query.fault_alloc_nth = field_count(request, "", "fault_alloc_nth", 0, std::uint64_t{1} << 53);
  query.fault_poison_step =
      field_count(request, "", "fault_poison_step", 0, std::uint64_t{1} << 53);
  query.fault_throw = field_bool(request, "", "fault_throw", false);
  return query;
}

Json stats_json(const ServiceStats& stats) {
  Json cache;
  cache.set("source_hits", stats.cache.source_hits);
  cache.set("canonical_hits", stats.cache.canonical_hits);
  cache.set("misses", stats.cache.misses);
  cache.set("evictions", stats.cache.evictions);
  cache.set("entries", static_cast<std::uint64_t>(stats.cache.entries));
  cache.set("resident_bytes", static_cast<std::uint64_t>(stats.cache.resident_bytes));
  Json s;
  s.set("submitted", stats.submitted);
  s.set("completed", stats.completed);
  s.set("rejected", stats.rejected);
  s.set("cancelled", stats.cancelled);
  s.set("batches", stats.batches);
  s.set("coalesced", stats.coalesced);
  s.set("pending", static_cast<std::uint64_t>(stats.pending));
  s.set("draining", stats.draining);
  s.set("cache", std::move(cache));
  return s;
}

// --- bounded line input --------------------------------------------------

enum class ReadLine { Ok, Eof, Oversized };

/// getline with a byte cap: reads straight off the streambuf and stops
/// buffering once @p max_bytes are held, then discards (without storing)
/// the remainder of the line so the session stays framed.  A hostile
/// client can therefore cost at most max_bytes of memory per connection.
ReadLine read_bounded_line(std::istream& in, std::string& line, std::size_t max_bytes) {
  line.clear();
  std::streambuf* buffer = in.rdbuf();
  constexpr int kEof = std::char_traits<char>::eof();
  int ch;
  while ((ch = buffer->sbumpc()) != kEof) {
    if (ch == '\n') return ReadLine::Ok;
    if (line.size() >= max_bytes) {
      while ((ch = buffer->sbumpc()) != kEof && ch != '\n') {
      }
      return ReadLine::Oversized;
    }
    line.push_back(static_cast<char>(ch));
  }
  return line.empty() ? ReadLine::Eof : ReadLine::Ok;
}

/// Byte offset of the first invalid UTF-8 sequence (strict: overlong
/// encodings, surrogates and code points past U+10FFFF all count), or npos
/// when the whole line is valid.
std::size_t first_invalid_utf8(std::string_view text) {
  constexpr std::size_t npos = std::string_view::npos;
  std::size_t i = 0;
  while (i < text.size()) {
    const unsigned char lead = static_cast<unsigned char>(text[i]);
    if (lead < 0x80) {
      ++i;
      continue;
    }
    std::size_t length;
    std::uint32_t code_point;
    std::uint32_t min_value;
    if ((lead & 0xe0) == 0xc0) {
      length = 2;
      code_point = lead & 0x1f;
      min_value = 0x80;
    } else if ((lead & 0xf0) == 0xe0) {
      length = 3;
      code_point = lead & 0x0f;
      min_value = 0x800;
    } else if ((lead & 0xf8) == 0xf0) {
      length = 4;
      code_point = lead & 0x07;
      min_value = 0x10000;
    } else {
      return i;  // stray continuation byte or 0xfe/0xff
    }
    if (i + length > text.size()) return i;
    for (std::size_t k = 1; k < length; ++k) {
      const unsigned char cont = static_cast<unsigned char>(text[i + k]);
      if ((cont & 0xc0) != 0x80) return i;
      code_point = (code_point << 6) | (cont & 0x3f);
    }
    if (code_point < min_value || code_point > 0x10ffff ||
        (code_point >= 0xd800 && code_point <= 0xdfff)) {
      return i;
    }
    i += length;
  }
  return npos;
}

}  // namespace

void run_session(std::istream& in, std::ostream& out, AnalysisService& service,
                 const SessionOptions& options) {
  Session session{out, options};
  // Hello line: the first thing a client reads names the protocol and its
  // version, so schema drift is detectable before any request is sent.
  {
    Json hello;
    hello.set("hello", "unicon-serve");
    hello.set("version", kProtocolVersion);
    session.write_line(hello);
  }
  const auto stop_requested = [&options] {
    return options.stop != nullptr && *options.stop != 0;
  };
  std::string line;
  while (!stop_requested()) {
    const ReadLine status = read_bounded_line(in, line, options.max_line_bytes);
    if (status == ReadLine::Eof) break;
    if (status == ReadLine::Oversized) {
      session.write_line(error_json(
          "", ErrorCode::Parse,
          "request line exceeds the " + std::to_string(options.max_line_bytes) + "-byte limit"));
      continue;
    }
    if (line.empty()) continue;
    std::string id;
    try {
      if (line.find('\0') != std::string::npos) {
        throw ParseError("request line contains a NUL byte");
      }
      if (const std::size_t at = first_invalid_utf8(line); at != std::string_view::npos) {
        throw ParseError("request line is not valid UTF-8 (first bad byte at offset " +
                         std::to_string(at) + ")");
      }
      const Json request = Json::parse(line);
      if (!request.is_object()) {
        throw ParseError(std::string("request must be a JSON object, got ") +
                         json_type_name(request.type()));
      }
      id = field_string(request, "", "id", "");
      const std::string op = field_string(request, "", "op", "query");

      if (op == "query") {
        QueryRequest query = parse_query(request, options);
        const bool wait = field_bool(request, "", "wait", true);
        if (wait) {
          session.write_line(response_json(service.query(std::move(query)), options.timing));
        } else {
          {
            std::lock_guard<std::mutex> lock(session.mutex);
            ++session.outstanding;
          }
          // Ack before submitting: a fast worker may answer inside
          // submit()'s window, and the protocol promises the accepted
          // line always precedes its result line.
          Json accepted = envelope(id);
          accepted.set("ok", true);
          accepted.set("accepted", true);
          session.write_line(accepted);
          const bool timing = options.timing;
          service.submit(std::move(query), [&session, timing](QueryResponse r) {
            session.finish_async(response_json(r, timing));
          });
        }
      } else if (op == "cancel") {
        reject_unknown_fields(request, "", {"id", "op", "target"});
        const std::string target = field_string(request, "", "target", "");
        const bool cancelled = service.cancel(options.client, target);
        Json response = envelope(id);
        response.set("ok", true);
        response.set("cancelled", cancelled);
        session.write_line(response);
      } else if (op == "stats") {
        reject_unknown_fields(request, "", {"id", "op"});
        Json response = envelope(id);
        response.set("ok", true);
        response.set("stats", stats_json(service.stats()));
        session.write_line(response);
      } else if (op == "shutdown") {
        reject_unknown_fields(request, "", {"id", "op"});
        session.drain();
        Json response = envelope(id);
        response.set("ok", true);
        response.set("bye", true);
        session.write_line(response);
        return;
      } else {
        throw ParseError("unknown op '" + op + "'");
      }
    } catch (const Error& e) {
      session.write_line(error_json(id, e.code(), e.what()));
    } catch (const std::bad_alloc&) {
      session.write_line(
          error_json(id, ErrorCode::OutOfMemory, "allocation failure (std::bad_alloc)"));
    } catch (const std::exception& e) {
      session.write_line(error_json(id, ErrorCode::Internal, e.what()));
    }
  }
  session.drain();
}

}  // namespace unicon::server
