// unicon-cache-v1 snapshot serialization for ModelCache (format and
// recovery semantics documented in snapshot.hpp).  Implemented here as
// out-of-line ModelCache members so model_cache.cpp keeps only the hot
// resolve path.
#include "server/snapshot.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "io/tra.hpp"
#include "support/errors.hpp"

namespace unicon::server {

namespace {

// A corrupted length field must not drive a giant allocation in the
// loader; no real record body approaches this.
constexpr std::uint64_t kMaxBodyBytes = std::uint64_t{1} << 30;
constexpr std::size_t kMaxSourceAliases = 100000;

std::string format_hash16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(value));
  return buffer;
}

std::uint64_t record_checksum(const std::string& hash, const std::string& body) {
  std::string covered;
  covered.reserve(hash.size() + 1 + body.size());
  covered += hash;
  covered += '\n';
  covered += body;
  return fnv1a64(covered);
}

bool is_hex(const std::string& s, std::size_t n) {
  if (s.size() != n) return false;
  for (const char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 19) return false;
  out = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

/// Parses `entry <hash> <bytes> <checksum>`; false on any deviation.
bool parse_entry_header(const std::string& line, std::string& hash, std::uint64_t& body_bytes,
                        std::string& checksum) {
  std::istringstream in(line);
  std::string tag, bytes_field, extra;
  if (!(in >> tag >> hash >> bytes_field >> checksum) || tag != "entry" || (in >> extra)) {
    return false;
  }
  if (!is_hex(hash, 32) || !is_hex(checksum, 16)) return false;
  if (!parse_u64(bytes_field, body_bytes) || body_bytes > kMaxBodyBytes) return false;
  return true;
}

/// Scans forward for the next plausible record boundary after a malformed
/// header.  A false positive (a body line that happens to start with
/// "entry ") just yields one more checksum-failed record — recovery stays
/// sound either way.
bool resync_to_boundary(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (line.rfind("entry ", 0) == 0 || line.rfind("end ", 0) == 0) return true;
  }
  return false;
}

bool parse_kind_name(const std::string& name, ModelKind& kind) {
  if (name == "uni") {
    kind = ModelKind::Uni;
  } else if (name == "dft") {
    kind = ModelKind::Dft;
  } else if (name == "ctmdp") {
    kind = ModelKind::CtmdpFile;
  } else if (name == "ctmc") {
    kind = ModelKind::CtmcFile;
  } else {
    return false;
  }
  return true;
}

struct ParsedRecord {
  ModelKind kind = ModelKind::Uni;
  std::vector<std::string> sources;
  std::optional<Ctmdp> ctmdp;
  std::optional<Ctmc> chain;
  BitVector goal;
  BitVector goal_universal;
};

BitVector parse_mask(const std::string& chars, std::size_t num_states) {
  if (chars.size() != num_states) {
    throw ParseError("cache snapshot: goal mask length " + std::to_string(chars.size()) +
                     " does not match " + std::to_string(num_states) + " states");
  }
  BitVector mask(num_states);
  for (std::size_t s = 0; s < num_states; ++s) {
    if (chars[s] == '1') {
      mask.set(s);
    } else if (chars[s] != '0') {
      throw ParseError("cache snapshot: goal mask holds a character other than 0/1");
    }
  }
  return mask;
}

std::string expect_field(std::istream& in, const char* field) {
  std::string line;
  const std::string prefix = std::string(field) + ' ';
  if (!std::getline(in, line) || line.rfind(prefix, 0) != 0) {
    throw ParseError(std::string("cache snapshot: expected '") + field + "' line");
  }
  return line.substr(prefix.size());
}

/// Parses an authenticated record body; throws ParseError/ModelError on any
/// structural deviation (the caller counts those as corrupt records).
ParsedRecord parse_record_body(const std::string& body) {
  ParsedRecord record;
  std::istringstream in(body);
  if (!parse_kind_name(expect_field(in, "kind"), record.kind)) {
    throw ParseError("cache snapshot: unknown model kind");
  }
  std::uint64_t num_sources = 0;
  if (!parse_u64(expect_field(in, "sources"), num_sources) || num_sources > kMaxSourceAliases) {
    throw ParseError("cache snapshot: bad source-alias count");
  }
  record.sources.reserve(num_sources);
  for (std::uint64_t i = 0; i < num_sources; ++i) {
    std::string key;
    if (!std::getline(in, key) || !is_hex(key, 32)) {
      throw ParseError("cache snapshot: bad source-alias key");
    }
    record.sources.push_back(std::move(key));
  }
  const std::string goal_chars = expect_field(in, "goal");
  const std::string ugoal_chars = expect_field(in, "ugoal");
  std::string marker;
  if (!std::getline(in, marker) || marker != "model") {
    throw ParseError("cache snapshot: expected 'model' marker");
  }
  std::size_t num_states = 0;
  if (record.kind == ModelKind::CtmcFile) {
    record.chain = io::read_ctmc(in);
    num_states = record.chain->num_states();
  } else {
    record.ctmdp = io::read_ctmdp(in);
    num_states = record.ctmdp->num_states();
  }
  record.goal = parse_mask(goal_chars, num_states);
  record.goal_universal = parse_mask(ugoal_chars, num_states);
  return record;
}

std::size_t mask_bytes(const BitVector& mask) { return (mask.size() + 7) / 8; }

}  // namespace

SnapshotStats ModelCache::save_snapshot(std::ostream& out) const {
  struct Item {
    std::string hash;
    std::shared_ptr<const CachedModel> model;
    std::vector<std::string> sources;
  };
  std::vector<Item> items;
  {
    // Copy the shared_ptrs under the lock; serialization (which can be
    // megabytes of io text) runs without blocking resolve().
    std::lock_guard<std::mutex> lock(mutex_);
    std::unordered_map<std::string, std::size_t> index;
    items.reserve(by_canonical_.size());
    for (const auto& [hash, entry] : by_canonical_) {
      index.emplace(hash, items.size());
      items.push_back(Item{hash, entry.model, {}});
    }
    for (const auto& [source_key, canonical] : source_to_canonical_) {
      const auto it = index.find(canonical);
      if (it != index.end()) items[it->second].sources.push_back(source_key);
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.hash < b.hash; });
  for (Item& item : items) std::sort(item.sources.begin(), item.sources.end());

  SnapshotStats stats;
  out << kCacheSnapshotMagic << '\n';
  for (const Item& item : items) {
    std::string body;
    body += "kind ";
    body += model_kind_name(item.model->kind());
    body += '\n';
    body += "sources " + std::to_string(item.sources.size()) + '\n';
    for (const std::string& key : item.sources) {
      body += key;
      body += '\n';
    }
    body += "goal ";
    for (const bool bit : item.model->goal_) body += bit ? '1' : '0';
    body += '\n';
    body += "ugoal ";
    for (const bool bit : item.model->goal_universal_) body += bit ? '1' : '0';
    body += '\n';
    body += "model\n";
    std::ostringstream model_text;
    if (item.model->is_ctmc()) {
      io::write_ctmc(model_text, item.model->chain());
    } else {
      io::write_ctmdp(model_text, item.model->ctmdp());
    }
    body += model_text.str();
    if (body.back() != '\n') body += '\n';  // record headers start on a line boundary
    out << "entry " << item.hash << ' ' << body.size() << ' '
        << format_hash16(record_checksum(item.hash, body)) << '\n'
        << body;
    ++stats.entries_written;
  }
  out << "end " << items.size() << '\n';
  return stats;
}

SnapshotStats ModelCache::load_snapshot(std::istream& in) {
  SnapshotStats stats;
  std::string line;
  if (!std::getline(in, line) || line != kCacheSnapshotMagic) {
    stats.truncated = true;
    return stats;
  }
  std::uint64_t records_seen = 0;
  bool saw_end = false;
  bool have_line = static_cast<bool>(std::getline(in, line));
  while (have_line) {
    if (line.rfind("end ", 0) == 0) {
      saw_end = true;
      std::uint64_t declared = 0;
      // A count mismatch or trailing bytes past the marker mean whole
      // records were lost or appended — flag it, keep what authenticated.
      if (!parse_u64(line.substr(4), declared) || declared != records_seen ||
          in.peek() != std::char_traits<char>::eof()) {
        stats.truncated = true;
      }
      break;
    }
    std::string hash;
    std::string checksum;
    std::uint64_t body_bytes = 0;
    if (!parse_entry_header(line, hash, body_bytes, checksum)) {
      ++stats.entries_corrupt;
      ++records_seen;
      have_line = resync_to_boundary(in, line);
      continue;
    }
    ++records_seen;
    std::string body(body_bytes, '\0');
    in.read(body.data(), static_cast<std::streamsize>(body_bytes));
    if (static_cast<std::uint64_t>(in.gcount()) != body_bytes) {
      // Torn tail: the writer died mid-record (non-atomic copy) or the
      // file was truncated.  Nothing after this point can be framed.
      ++stats.entries_corrupt;
      stats.truncated = true;
      return stats;
    }
    have_line = static_cast<bool>(std::getline(in, line));
    if (format_hash16(record_checksum(hash, body)) != checksum) {
      ++stats.entries_corrupt;
      continue;  // declared length already advanced us past the record
    }
    try {
      ParsedRecord record = parse_record_body(body);
      auto built = std::shared_ptr<CachedModel>(new CachedModel());
      built->kind_ = record.kind;
      built->canonical_hash_ = hash;
      built->goal_ = std::move(record.goal);
      built->goal_universal_ = std::move(record.goal_universal);
      if (record.chain.has_value()) {
        built->chain_ = std::move(record.chain);
      } else {
        built->ctmdp_ = std::move(record.ctmdp);
      }
      built->base_bytes_ = (built->ctmdp_.has_value() ? built->ctmdp_->memory_bytes()
                                                      : built->chain_->memory_bytes()) +
                           mask_bytes(built->goal_) + mask_bytes(built->goal_universal_);
      std::lock_guard<std::mutex> lock(mutex_);
      const auto existing = by_canonical_.find(hash);
      if (existing == by_canonical_.end()) {
        by_canonical_[hash] = Entry{built, ++tick_};
        ++stats.entries_loaded;
      }
      for (const std::string& key : record.sources) {
        if (source_to_canonical_.emplace(key, hash).second) ++stats.aliases_loaded;
      }
      evict_locked(nullptr);
    } catch (const std::exception&) {
      // Authenticated but unparseable (version skew, hand-edited file):
      // treat exactly like a checksum failure.
      ++stats.entries_corrupt;
    }
  }
  if (!saw_end) stats.truncated = true;
  return stats;
}

SnapshotStats save_cache_snapshot(const ModelCache& cache, const std::string& path) {
  const std::string tmp = path + ".tmp";
  SnapshotStats stats;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ModelError("cache snapshot: cannot open '" + tmp + "' for writing");
    }
    stats = cache.save_snapshot(out);
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw ModelError("cache snapshot: write to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ModelError("cache snapshot: rename to '" + path + "' failed: " +
                     std::string(std::strerror(errno)));
  }
  return stats;
}

SnapshotStats load_cache_snapshot(ModelCache& cache, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // no snapshot on disk is a normal cold start
  return cache.load_snapshot(in);
}

}  // namespace unicon::server
