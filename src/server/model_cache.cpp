#include "server/model_cache.hpp"

#include <sstream>
#include <utility>

#include "core/transform.hpp"
#include "dft/lower.hpp"
#include "dft/parser.hpp"
#include "dft/sema.hpp"
#include "io/tra.hpp"
#include "lang/build.hpp"
#include "lang/parser.hpp"
#include "support/errors.hpp"

namespace unicon::server {

namespace {

/// Appends a goal mask as raw '0'/'1' bytes — part of the canonical model
/// serialization, so two lowerings share an entry only when their masks
/// agree bit for bit.
void append_mask(std::string& out, const BitVector& mask) {
  out.reserve(out.size() + mask.size() + 1);
  for (std::size_t s = 0; s < mask.size(); ++s) out.push_back(mask[s] ? '1' : '0');
  out.push_back('\n');
}

std::size_t mask_bytes(const BitVector& mask) { return (mask.size() + 7) / 8; }

template <typename T>
std::size_t vector_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

std::size_t discrete_kernel_bytes(const DiscreteKernel& k) {
  return vector_bytes(k.state_first) + vector_bytes(k.entry_first) + vector_bytes(k.prob) +
         vector_bytes(k.col) + vector_bytes(k.goal_pr);
}

std::size_t dense_kernel_bytes(const DenseKernel& k) {
  return vector_bytes(k.dense_index) + vector_bytes(k.dense_state) + vector_bytes(k.row_first) +
         vector_bytes(k.orig_trans_first) + vector_bytes(k.entry_first) + vector_bytes(k.goal_pr) +
         vector_bytes(k.prob) + vector_bytes(k.col);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string content_hash(std::string_view bytes) {
  // Two independently seeded passes give 128 key bits; the second seed is
  // the first pass's offset basis xor-folded with an arbitrary odd
  // constant so the passes never coincide.
  const std::uint64_t a = fnv1a64(bytes);
  const std::uint64_t b = fnv1a64(bytes, a ^ 0x9e3779b97f4a7c15ull);
  char buffer[33];
  std::snprintf(buffer, sizeof buffer, "%016llx%016llx", static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buffer;
}

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::Uni: return "uni";
    case ModelKind::Dft: return "dft";
    case ModelKind::CtmdpFile: return "ctmdp";
    case ModelKind::CtmcFile: return "ctmc";
  }
  return "?";
}

const Ctmdp& CachedModel::ctmdp() const {
  if (!ctmdp_.has_value()) {
    throw ModelError("model cache: entry holds a CTMC, not a CTMDP");
  }
  return *ctmdp_;
}

const Ctmc& CachedModel::chain() const {
  if (!chain_.has_value()) {
    throw ModelError("model cache: entry holds a CTMDP, not a CTMC");
  }
  return *chain_;
}

const DiscreteKernel& CachedModel::discrete_kernel(Objective objective) const {
  const std::size_t slot = objective == Objective::Minimize ? 1 : 0;
  std::lock_guard<std::mutex> lock(kernel_mutex_);
  if (discrete_[slot] == nullptr) {
    discrete_[slot] = std::make_unique<DiscreteKernel>(ctmdp(), goal_for(objective));
    kernel_bytes_.fetch_add(discrete_kernel_bytes(*discrete_[slot]), std::memory_order_relaxed);
  }
  return *discrete_[slot];
}

const DenseKernel& CachedModel::dense_kernel(Objective objective) const {
  const std::size_t slot = objective == Objective::Minimize ? 1 : 0;
  std::lock_guard<std::mutex> lock(kernel_mutex_);
  if (dense_[slot] == nullptr) {
    dense_[slot] = std::make_unique<DenseKernel>(ctmdp(), goal_for(objective), BitVector{});
    kernel_bytes_.fetch_add(dense_kernel_bytes(*dense_[slot]), std::memory_order_relaxed);
  }
  return *dense_[slot];
}

ModelCache::Resolved ModelCache::resolve(ModelKind kind, const std::string& source,
                                         const std::string& labels, const std::string& goal_name,
                                         RunGuard* guard, Telemetry* telemetry) {
  std::string source_key_bytes;
  source_key_bytes += model_kind_name(kind);
  source_key_bytes += '\n';
  source_key_bytes += goal_name;
  source_key_bytes += '\n';
  source_key_bytes += source;
  source_key_bytes += '\0';
  source_key_bytes += labels;
  const std::string source_key = content_hash(source_key_bytes);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto alias = source_to_canonical_.find(source_key);
    if (alias != source_to_canonical_.end()) {
      const auto entry = by_canonical_.find(alias->second);
      if (entry != by_canonical_.end()) {
        entry->second.last_use = ++tick_;
        ++stats_.source_hits;
        return {entry->second.model, true};
      }
      // The canonical entry was evicted out from under the alias; fall
      // through to re-lower (the stale alias is overwritten below).
    }
  }

  // Lower outside the lock: parsing/composition/minimization can take
  // arbitrarily long and must not serialize unrelated queries.
  auto built = std::shared_ptr<CachedModel>(new CachedModel());
  built->kind_ = kind;
  std::string canonical_bytes;
  canonical_bytes += model_kind_name(kind);
  canonical_bytes += '\n';

  switch (kind) {
    case ModelKind::Uni: {
      const lang::Model ast = lang::parse_and_check(source, "<request>");
      lang::BuildOptions build_options;
      build_options.guard = guard;
      build_options.telemetry = telemetry;
      lang::BuiltModel model = lang::build_model(ast, build_options);
      model = lang::minimize_model(model, guard, telemetry);
      if (!model.has_prop(goal_name)) {
        throw ModelError("model has no proposition '" + goal_name + "'");
      }
      if (!model.system.is_uniform(UniformityView::Closed, 1e-6)) {
        throw UniformityError("model cache: built system is not uniform (closed view)");
      }
      const BitVector imc_goal = model.mask(goal_name);
      TransformResult transformed = transform_to_ctmdp(model.system, &imc_goal, guard, telemetry);
      built->goal_ = std::move(transformed.goal);
      built->goal_universal_ = std::move(transformed.goal_universal);
      built->ctmdp_ = std::move(transformed.ctmdp);
      break;
    }
    case ModelKind::Dft: {
      const dft::CheckedDft checked = dft::parse_and_check_dft(source, "<request>");
      // The canonical Galileo print participates in the canonical key:
      // comment, whitespace and formatting variants of one tree alias onto
      // a single entry, and a Dft entry never deduplicates against a Uni
      // entry that happens to lower to the same CTMDP.
      canonical_bytes += dft::to_galileo(checked.ast);
      canonical_bytes += '\n';
      dft::LowerOptions lower_options;
      lower_options.guard = guard;
      lower_options.telemetry = telemetry;
      lang::BuiltModel model = dft::lower_dft(checked, lower_options);
      model = lang::minimize_model(model, guard, telemetry);
      if (!model.system.is_uniform(UniformityView::Closed, 1e-6)) {
        throw UniformityError("model cache: built system is not uniform (closed view)");
      }
      const BitVector imc_goal = model.mask("failed");
      TransformResult transformed = transform_to_ctmdp(model.system, &imc_goal, guard, telemetry);
      built->goal_ = std::move(transformed.goal);
      built->goal_universal_ = std::move(transformed.goal_universal);
      built->ctmdp_ = std::move(transformed.ctmdp);
      break;
    }
    case ModelKind::CtmdpFile: {
      std::istringstream in(source);
      Ctmdp model = io::read_ctmdp(in);
      std::istringstream lab(labels);
      built->goal_ = io::read_goal(lab, model.num_states());
      built->goal_universal_ = built->goal_;
      built->ctmdp_ = std::move(model);
      break;
    }
    case ModelKind::CtmcFile: {
      std::istringstream in(source);
      Ctmc model = io::read_ctmc(in);
      std::istringstream lab(labels);
      built->goal_ = io::read_goal(lab, model.num_states());
      built->goal_universal_ = built->goal_;
      built->chain_ = std::move(model);
      break;
    }
  }

  {
    std::ostringstream canonical;
    if (built->ctmdp_.has_value()) {
      io::write_ctmdp(canonical, *built->ctmdp_);
    } else {
      io::write_ctmc(canonical, *built->chain_);
    }
    canonical_bytes += canonical.str();
  }
  append_mask(canonical_bytes, built->goal_);
  if (kind == ModelKind::Uni || kind == ModelKind::Dft) {
    append_mask(canonical_bytes, built->goal_universal_);
  }
  built->canonical_hash_ = content_hash(canonical_bytes);
  built->base_bytes_ =
      (built->ctmdp_.has_value() ? built->ctmdp_->memory_bytes() : built->chain_->memory_bytes()) +
      mask_bytes(built->goal_) + mask_bytes(built->goal_universal_);

  std::lock_guard<std::mutex> lock(mutex_);
  source_to_canonical_[source_key] = built->canonical_hash_;
  const auto existing = by_canonical_.find(built->canonical_hash_);
  if (existing != by_canonical_.end()) {
    // Canonical dedup: a textually different spelling of a model we
    // already hold.  Keep the established entry (its kernel memo may be
    // warm) and drop the fresh lowering.
    existing->second.last_use = ++tick_;
    ++stats_.canonical_hits;
    return {existing->second.model, true};
  }
  by_canonical_[built->canonical_hash_] = Entry{built, ++tick_};
  ++stats_.misses;
  evict_locked(built.get());
  return {std::move(built), false};
}

std::size_t ModelCache::resident_locked() const {
  std::size_t total = 0;
  for (const auto& [hash, entry] : by_canonical_) total += entry.model->bytes();
  return total;
}

void ModelCache::evict_locked(const CachedModel* keep) {
  if (budget_ == 0) return;
  while (by_canonical_.size() > 1 && resident_locked() > budget_) {
    auto victim = by_canonical_.end();
    for (auto it = by_canonical_.begin(); it != by_canonical_.end(); ++it) {
      if (it->second.model.get() == keep) continue;
      if (victim == by_canonical_.end() || it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == by_canonical_.end()) return;
    for (auto it = source_to_canonical_.begin(); it != source_to_canonical_.end();) {
      it = it->second == victim->first ? source_to_canonical_.erase(it) : std::next(it);
    }
    by_canonical_.erase(victim);
    ++stats_.evictions;
  }
}

CacheStats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s = stats_;
  s.entries = by_canonical_.size();
  s.resident_bytes = resident_locked();
  return s;
}

}  // namespace unicon::server
