#include "lang/sema.hpp"

#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace unicon::lang {

namespace {

/// Relative tolerance for the per-component equal-exit-rate check.
constexpr double kRateTol = 1e-9;

class Checker {
 public:
  explicit Checker(const Model& m) : m_(m) {}

  std::vector<Diagnostic> run() {
    check_declarations();
    for (const ComponentDecl& c : m_.components) check_component(c);
    for (const TimingDecl& t : m_.timings) check_timing(t);
    for (const LetDecl& l : m_.lets) {
      // Scope the let only after its body is checked: lets reference
      // earlier lets, never themselves, which also rules out recursion.
      let_alphabet_[l.name.text] = check_expr(*l.expr);
      lets_in_scope_.insert(l.name.text);
    }
    check_system();
    check_props();
    return std::move(diagnostics_);
  }

 private:
  void error(SourceLoc loc, std::string message) {
    diagnostics_.push_back(
        Diagnostic{Diagnostic::Category::Semantic, loc, std::move(message)});
  }

  // Components, timings, lets and props live in one global namespace so
  // that references in expressions and property formulas are unambiguous.
  void check_declarations() {
    std::unordered_map<std::string, const char*> seen;
    auto declare = [&](const Name& n, const char* kind) {
      const auto [it, inserted] = seen.emplace(n.text, kind);
      if (!inserted) {
        error(n.loc, std::string(kind) + " '" + n.text + "' redeclares a " + it->second +
                         " of the same name");
      }
    };
    for (const ComponentDecl& c : m_.components) declare(c.name, "component");
    for (const TimingDecl& t : m_.timings) declare(t.name, "timing");
    for (const LetDecl& l : m_.lets) declare(l.name, "let");
    for (const PropDecl& p : m_.props) declare(p.name, "prop");
    for (const ComponentDecl& c : m_.components) {
      for (const LabelDecl& l : c.labels) declare(l.name, "label");
    }
  }

  void check_component(const ComponentDecl& c) {
    std::unordered_set<std::string> states;
    for (const Name& s : c.states) {
      if (!states.insert(s.text).second) {
        error(s.loc, "duplicate state '" + s.text + "' in component '" + c.name.text + "'");
      }
    }
    if (states.empty()) {
      error(c.name.loc, "component '" + c.name.text + "' declares no states");
      return;
    }
    auto check_state = [&](const Name& s) {
      if (states.count(s.text) == 0) {
        error(s.loc, "undeclared state '" + s.text + "' in component '" + c.name.text + "'");
      }
    };
    if (!c.has_initial) {
      error(c.name.loc, "component '" + c.name.text + "' has no initial state");
    } else {
      check_state(c.initial);
    }
    for (const LabelDecl& l : c.labels) {
      for (const Name& s : l.states) check_state(s);
    }
    for (const InteractiveDecl& t : c.interactive) {
      check_state(t.from);
      check_state(t.to);
    }

    // Uniformity by construction (Def. 4 / Lemma 2): a component that owns
    // Markov transitions must give *every* state the same exit rate — the
    // same discipline the elapse operator enforces with its self-loops —
    // so any composition of checked components stays uniform.
    std::unordered_map<std::string, double> exit_rate;
    for (const MarkovDecl& t : c.markov) {
      check_state(t.from);
      check_state(t.to);
      if (!(t.rate > 0.0) || !std::isfinite(t.rate)) {
        error(t.rate_loc, "transition rate must be positive and finite");
      } else {
        exit_rate[t.from.text] += t.rate;
      }
    }
    if (!c.markov.empty()) {
      const Name* reference = nullptr;
      double reference_rate = 0.0;
      for (const Name& s : c.states) {
        const auto it = exit_rate.find(s.text);
        const double e = it == exit_rate.end() ? 0.0 : it->second;
        if (reference == nullptr) {
          reference = &s;
          reference_rate = e;
        } else if (std::abs(e - reference_rate) >
                   kRateTol * std::max(1.0, std::max(e, reference_rate))) {
          error(c.name.loc, "component '" + c.name.text +
                                "' is not uniform: state '" + s.text + "' has exit rate " +
                                std::to_string(e) + " but state '" + reference->text + "' has " +
                                std::to_string(reference_rate) +
                                " (uniformity-by-construction violation; pad with self-loops "
                                "or use elapse)");
          break;
        }
      }
    }
  }

  void check_timing(const TimingDecl& t) {
    auto positive = [&](double r) { return r > 0.0 && std::isfinite(r); };
    switch (t.kind) {
      case TimingDecl::Kind::Exponential:
      case TimingDecl::Kind::Erlang:
        if (!positive(t.rate)) error(t.params_loc, "distribution rate must be positive");
        break;
      case TimingDecl::Kind::Phases:
        for (double r : t.rates) {
          if (!positive(r)) {
            error(t.params_loc, "phase rates must be positive");
            break;
          }
        }
        break;
    }
  }

  /// Visible alphabet of an expression (actions it can perform or sync
  /// on), used to lint sync/hide sets.  Returns empty set for erroneous
  /// references (already reported).
  std::unordered_set<std::string> check_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Ref: {
        if (const ComponentDecl* c = m_.find_component(e.ref.text)) {
          std::unordered_set<std::string> alphabet;
          for (const InteractiveDecl& t : c->interactive) {
            if (t.action.text != "tau") alphabet.insert(t.action.text);
          }
          return alphabet;
        }
        if (m_.find_let(e.ref.text) != nullptr) {
          if (lets_in_scope_.count(e.ref.text) == 0) {
            error(e.ref.loc, "let '" + e.ref.text +
                                 "' is used before its definition (lets may only reference "
                                 "earlier lets)");
            return {};
          }
          return let_alphabet_.at(e.ref.text);
        }
        if (m_.find_timing(e.ref.text) != nullptr) {
          error(e.ref.loc,
                "'" + e.ref.text + "' is a timing, not a component (use elapse(...) to "
                                   "instantiate it)");
        } else {
          error(e.ref.loc, "undeclared component '" + e.ref.text + "'");
        }
        return {};
      }
      case Expr::Kind::Parallel: {
        std::unordered_set<std::string> alphabet = check_expr(*e.left);
        for (const std::string& a : check_expr(*e.right)) alphabet.insert(a);
        for (const Name& a : e.sync) {
          if (a.text == "tau") {
            error(a.loc, "tau cannot appear in a synchronization set");
          } else if (alphabet.count(a.text) == 0) {
            error(a.loc, "synchronization action '" + a.text +
                             "' does not occur in either operand");
          }
        }
        return alphabet;
      }
      case Expr::Kind::Hide: {
        std::unordered_set<std::string> alphabet = check_expr(*e.child);
        for (const Name& a : e.hidden) {
          if (a.text == "tau") {
            error(a.loc, "tau cannot be hidden (it is already internal)");
          } else if (alphabet.count(a.text) == 0) {
            error(a.loc, "hidden action '" + a.text + "' does not occur in the expression");
          } else {
            alphabet.erase(a.text);
          }
        }
        return alphabet;
      }
      case Expr::Kind::Elapse: {
        for (const Name* a : {&e.fire, &e.trigger}) {
          if (a->text == "tau") error(a->loc, "elapse fire/trigger actions must be visible");
        }
        const TimingDecl* t = m_.find_timing(e.timing.text);
        if (t == nullptr) {
          if (m_.find_component(e.timing.text) != nullptr) {
            error(e.timing.loc,
                  "'" + e.timing.text + "' is a component, not a timing");
          } else {
            error(e.timing.loc, "undeclared timing '" + e.timing.text + "'");
          }
        } else if (e.uniform_rate != 0.0 &&
                   e.uniform_rate + 1e-12 < t->max_exit_rate()) {
          error(e.rate_loc, "elapse uniformization rate " + std::to_string(e.uniform_rate) +
                                " is below the maximal phase exit rate " +
                                std::to_string(t->max_exit_rate()) + " of timing '" +
                                e.timing.text + "' (non-uniform time constraint)");
        }
        if (e.uniform_rate < 0.0 || !std::isfinite(e.uniform_rate)) {
          error(e.rate_loc, "elapse uniformization rate must be positive");
        }
        return {e.fire.text, e.trigger.text};
      }
    }
    return {};
  }

  void check_system() {
    if (m_.systems.empty()) {
      error(SourceLoc{1, 1}, "model declares no 'system' composition");
      return;
    }
    for (std::size_t i = 1; i < m_.systems.size(); ++i) {
      error(m_.systems[i].loc, "duplicate 'system' declaration (a model has exactly one)");
    }
    check_expr(*m_.systems.front().expr);
  }

  void check_props() {
    std::unordered_set<std::string> labels;
    for (const ComponentDecl& c : m_.components) {
      for (const LabelDecl& l : c.labels) labels.insert(l.name.text);
    }
    std::unordered_set<std::string> props_in_scope;
    for (const PropDecl& p : m_.props) {
      check_prop_expr(*p.expr, labels, props_in_scope);
      props_in_scope.insert(p.name.text);
    }
  }

  void check_prop_expr(const PropExpr& e, const std::unordered_set<std::string>& labels,
                       const std::unordered_set<std::string>& props_in_scope) {
    switch (e.kind) {
      case PropExpr::Kind::Atom:
        if (labels.count(e.atom.text) == 0 && props_in_scope.count(e.atom.text) == 0) {
          error(e.atom.loc, "undeclared proposition '" + e.atom.text +
                                "' (labels and earlier props are in scope)");
        }
        break;
      case PropExpr::Kind::Const:
        break;
      case PropExpr::Kind::Not:
        check_prop_expr(*e.a, labels, props_in_scope);
        break;
      case PropExpr::Kind::And:
      case PropExpr::Kind::Or:
        check_prop_expr(*e.a, labels, props_in_scope);
        check_prop_expr(*e.b, labels, props_in_scope);
        break;
    }
  }

  const Model& m_;
  std::vector<Diagnostic> diagnostics_;
  std::unordered_set<std::string> lets_in_scope_;
  std::unordered_map<std::string, std::unordered_set<std::string>> let_alphabet_;
};

}  // namespace

std::vector<Diagnostic> check_model(const Model& m) { return Checker(m).run(); }

}  // namespace unicon::lang
