// Canonical pretty-printer for UNI models.
//
// print_model emits concrete syntax that parses back to an equivalent AST;
// printing is idempotent (print(parse(print(m))) == print(m)), which is
// the invariant the language fuzzer checks on round-trips.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace unicon::lang {

std::string print_model(const Model& m);
std::string print_expr(const Expr& e);
std::string print_prop_expr(const PropExpr& e);

}  // namespace unicon::lang
