#include "lang/printer.hpp"

#include <cstdio>

namespace unicon::lang {

namespace {

std::string number(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

std::string name_list(const std::vector<Name>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) out += ", ";
    out += names[i].text;
  }
  return out;
}

/// Operand of a parallel operator: chains associate to the left, so a
/// parallel left child needs no parentheses; anything that is not a plain
/// leaf does on the right (and hide always does).
std::string print_operand(const Expr& e, bool left_position) {
  const bool bare = e.kind == Expr::Kind::Ref || e.kind == Expr::Kind::Elapse ||
                    (left_position && e.kind == Expr::Kind::Parallel);
  return bare ? print_expr(e) : "(" + print_expr(e) + ")";
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Ref:
      return e.ref.text;
    case Expr::Kind::Parallel: {
      const std::string op =
          e.interleave ? " ||| " : " |[" + name_list(e.sync) + "]| ";
      return print_operand(*e.left, true) + op + print_operand(*e.right, false);
    }
    case Expr::Kind::Hide:
      return "hide {" + name_list(e.hidden) + "} in " + print_expr(*e.child);
    case Expr::Kind::Elapse: {
      std::string out =
          "elapse(" + e.fire.text + ", " + e.trigger.text + ", " + e.timing.text;
      if (e.running) out += ", running";
      if (e.uniform_rate != 0.0) out += ", rate " + number(e.uniform_rate);
      return out + ")";
    }
  }
  return "";
}

std::string print_prop_expr(const PropExpr& e) {
  switch (e.kind) {
    case PropExpr::Kind::Atom:
      return e.atom.text;
    case PropExpr::Kind::Const:
      return e.value ? "true" : "false";
    case PropExpr::Kind::Not: {
      const bool bare = e.a->kind == PropExpr::Kind::Atom || e.a->kind == PropExpr::Kind::Const ||
                        e.a->kind == PropExpr::Kind::Not;
      return bare ? "!" + print_prop_expr(*e.a) : "!(" + print_prop_expr(*e.a) + ")";
    }
    case PropExpr::Kind::And: {
      auto operand = [](const PropExpr& x) {
        return x.kind == PropExpr::Kind::Or ? "(" + print_prop_expr(x) + ")"
                                            : print_prop_expr(x);
      };
      return operand(*e.a) + " & " + operand(*e.b);
    }
    case PropExpr::Kind::Or:
      return print_prop_expr(*e.a) + " | " + print_prop_expr(*e.b);
  }
  return "";
}

std::string print_model(const Model& m) {
  std::string out;
  if (!m.name.empty()) out += "model " + m.name + ";\n\n";

  for (const ComponentDecl& c : m.components) {
    out += "component " + c.name.text + " {\n";
    out += "  states " + name_list(c.states) + ";\n";
    if (c.has_initial) out += "  initial " + c.initial.text + ";\n";
    for (const LabelDecl& l : c.labels) {
      out += "  label " + l.name.text + ": " + name_list(l.states) + ";\n";
    }
    for (const InteractiveDecl& t : c.interactive) {
      out += "  " + t.action.text + ": " + t.from.text + " -> " + t.to.text + ";\n";
    }
    for (const MarkovDecl& t : c.markov) {
      out += "  rate " + number(t.rate) + ": " + t.from.text + " -> " + t.to.text + ";\n";
    }
    out += "}\n\n";
  }

  for (const TimingDecl& t : m.timings) {
    out += "timing " + t.name.text + " = ";
    switch (t.kind) {
      case TimingDecl::Kind::Exponential:
        out += "exponential(" + number(t.rate) + ")";
        break;
      case TimingDecl::Kind::Erlang:
        out += "erlang(" + std::to_string(t.phases) + ", " + number(t.rate) + ")";
        break;
      case TimingDecl::Kind::Phases: {
        out += "phases(";
        for (std::size_t i = 0; i < t.rates.size(); ++i) {
          if (i) out += ", ";
          out += number(t.rates[i]);
        }
        out += ")";
        break;
      }
    }
    out += ";\n";
  }
  if (!m.timings.empty()) out += "\n";

  for (const LetDecl& l : m.lets) {
    out += "let " + l.name.text + " = " + print_expr(*l.expr) + ";\n";
  }
  if (!m.lets.empty()) out += "\n";

  for (const SystemDecl& s : m.systems) {
    out += "system = " + print_expr(*s.expr) + ";\n";
  }

  for (const PropDecl& p : m.props) {
    out += "prop " + p.name.text + " = " + print_prop_expr(*p.expr) + ";\n";
  }
  return out;
}

}  // namespace unicon::lang
