#include "lang/build.hpp"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "bisim/bisimulation.hpp"
#include "imc/compose.hpp"
#include "imc/elapse.hpp"
#include "support/errors.hpp"
#include "support/telemetry.hpp"

namespace unicon::lang {

namespace {

/// Per-leaf proposition table: for each local state, the indices (into the
/// global label list) of the labels it carries.  Elapse leaves carry none.
using LeafLabels = std::vector<std::vector<std::uint32_t>>;

class Lowering {
 public:
  Lowering(const Model& m, const BuildOptions& options)
      : m_(m), options_(options), actions_(std::make_shared<ActionTable>()) {}

  BuiltModel run() {
    std::optional<Telemetry::Span> span;
    if (options_.telemetry != nullptr) span.emplace(options_.telemetry->span("build"));

    // Global label index in declaration order across components.
    for (const ComponentDecl& c : m_.components) {
      for (const LabelDecl& l : c.labels) {
        label_index_.emplace(l.name.text, static_cast<std::uint32_t>(label_names_.size()));
        label_names_.push_back(l.name.text);
      }
    }

    CompositionExpr expr = lower_expr(*m_.systems.front().expr);

    ExploreOptions explore;
    explore.urgent = options_.urgent;
    explore.record_names = options_.record_names;
    explore.max_states = options_.max_states;
    explore.guard = options_.guard;
    explore.telemetry = options_.telemetry;
    std::vector<std::vector<StateId>> tuples;
    explore.record_tuples = &tuples;

    BuiltModel built;
    built.system = expr.explore(explore);
    built.actions = actions_;
    built.num_leaves = expr.num_leaves();

    const auto rate = built.system.uniform_rate(UniformityView::Closed, 1e-6);
    if (!rate) {
      throw UniformityError(
          "build_model: explored system is not uniform (closed view); this "
          "indicates a constraint the semantic checker could not see");
    }
    built.uniform_rate = *rate;

    // Transfer atomic propositions: composite state s carries label L iff
    // some leaf's local state carries L.
    const std::size_t n = built.system.num_states();
    std::vector<std::vector<bool>> masks(label_names_.size(), std::vector<bool>(n, false));
    for (StateId s = 0; s < n; ++s) {
      const std::vector<StateId>& tuple = tuples[s];
      for (std::size_t leaf = 0; leaf < tuple.size(); ++leaf) {
        for (const std::uint32_t label : leaf_labels_[leaf][tuple[leaf]]) {
          masks[label][s] = true;
        }
      }
    }
    built.prop_names = label_names_;
    built.prop_masks = std::move(masks);

    // Derived props, in declaration order (earlier props are in scope).
    for (const PropDecl& p : m_.props) {
      std::vector<bool> mask = eval_prop(*p.expr, built, n);
      built.prop_names.push_back(p.name.text);
      built.prop_masks.push_back(std::move(mask));
    }
    if (span) {
      span->metric("states", n);
      span->metric("leaves", built.num_leaves);
      span->metric("uniform_rate", built.uniform_rate);
      span->metric("labels", label_names_.size());
      span->metric("props", built.prop_names.size());
    }
    return built;
  }

 private:
  // --- leaves -------------------------------------------------------------

  /// Builds (once) and returns the IMC of a component declaration.
  const Imc& component_imc(const ComponentDecl& c) {
    const auto it = component_cache_.find(c.name.text);
    if (it != component_cache_.end()) return it->second;

    ImcBuilder b(actions_);
    std::unordered_map<std::string, StateId> ids;
    for (const Name& s : c.states) ids.emplace(s.text, b.add_state(s.text));
    b.set_initial(ids.at(c.initial.text));
    for (const InteractiveDecl& t : c.interactive) {
      b.add_interactive(ids.at(t.from.text), actions_->intern(t.action.text), ids.at(t.to.text));
    }
    for (const MarkovDecl& t : c.markov) {
      b.add_markov(ids.at(t.from.text), t.rate, ids.at(t.to.text));
    }

    LeafLabels labels(c.states.size());
    for (const LabelDecl& l : c.labels) {
      const std::uint32_t index = label_index_.at(l.name.text);
      for (const Name& s : l.states) labels[ids.at(s.text)].push_back(index);
    }
    component_labels_.emplace(c.name.text, std::move(labels));
    return component_cache_.emplace(c.name.text, b.build()).first->second;
  }

  /// Lowers an expression; appends one entry to leaf_labels_ per leaf, in
  /// the same left-to-right order CompositionExpr stores its leaves.
  CompositionExpr lower_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Ref: {
        if (const ComponentDecl* c = m_.find_component(e.ref.text)) {
          const Imc& imc = component_imc(*c);
          leaf_labels_.push_back(component_labels_.at(c->name.text));
          return CompositionExpr::leaf(imc);
        }
        // Sema guarantees this is an in-scope let.
        return lower_expr(*m_.find_let(e.ref.text)->expr);
      }
      case Expr::Kind::Parallel: {
        CompositionExpr left = lower_expr(*e.left);
        std::unordered_set<Action> sync;
        for (const Name& a : e.sync) sync.insert(actions_->intern(a.text));
        CompositionExpr right = lower_expr(*e.right);
        return CompositionExpr::parallel(std::move(left), std::move(sync), std::move(right));
      }
      case Expr::Kind::Hide: {
        CompositionExpr child = lower_expr(*e.child);
        std::unordered_set<Action> hidden;
        for (const Name& a : e.hidden) hidden.insert(actions_->intern(a.text));
        return CompositionExpr::hide(std::move(child), std::move(hidden));
      }
      case Expr::Kind::Elapse: {
        const TimingDecl* t = m_.find_timing(e.timing.text);
        ElapseOptions opts;
        opts.initially_running = e.running;
        opts.uniform_rate = e.uniform_rate;
        Imc constraint =
            elapse(timing_phase_type(*t), e.fire.text, e.trigger.text, actions_, opts);
        leaf_labels_.emplace_back(constraint.num_states());  // no labels
        return CompositionExpr::leaf(std::move(constraint));
      }
    }
    throw ModelError("build_model: unreachable expression kind");
  }

  // --- props --------------------------------------------------------------

  std::vector<bool> eval_prop(const PropExpr& e, const BuiltModel& built, std::size_t n) const {
    switch (e.kind) {
      case PropExpr::Kind::Atom:
        return built.mask(e.atom.text);
      case PropExpr::Kind::Const:
        return std::vector<bool>(n, e.value);
      case PropExpr::Kind::Not: {
        std::vector<bool> a = eval_prop(*e.a, built, n);
        a.flip();
        return a;
      }
      case PropExpr::Kind::And:
      case PropExpr::Kind::Or: {
        std::vector<bool> a = eval_prop(*e.a, built, n);
        const std::vector<bool> b = eval_prop(*e.b, built, n);
        for (std::size_t s = 0; s < n; ++s) {
          a[s] = e.kind == PropExpr::Kind::And ? (a[s] && b[s]) : (a[s] || b[s]);
        }
        return a;
      }
    }
    throw ModelError("build_model: unreachable property kind");
  }

  const Model& m_;
  const BuildOptions& options_;
  std::shared_ptr<ActionTable> actions_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, std::uint32_t> label_index_;
  std::unordered_map<std::string, Imc> component_cache_;
  std::unordered_map<std::string, LeafLabels> component_labels_;
  std::vector<LeafLabels> leaf_labels_;  // per composition leaf, in order
};

}  // namespace

BuiltModel minimize_model(const BuiltModel& built, RunGuard* guard, Telemetry* telemetry) {
  const std::size_t n = built.system.num_states();
  std::optional<Telemetry::Span> span;
  if (telemetry != nullptr) span.emplace(telemetry->span("minimize"));

  // Initial label classes = proposition signatures, so the bisimulation
  // never merges states that disagree on any label or prop.
  std::unordered_map<std::string, std::uint32_t> classes;
  std::vector<std::uint32_t> labels(n, 0);
  std::string signature(built.prop_masks.size(), '0');
  for (StateId s = 0; s < n; ++s) {
    for (std::size_t p = 0; p < built.prop_masks.size(); ++p) {
      signature[p] = built.prop_masks[p][s] ? '1' : '0';
    }
    labels[s] =
        classes.emplace(signature, static_cast<std::uint32_t>(classes.size())).first->second;
  }

  const Partition partition = branching_bisimulation(built.system, &labels, guard, telemetry);

  BuiltModel out;
  out.system = quotient(built.system, partition);
  out.actions = built.actions;
  out.num_leaves = built.num_leaves;
  out.uniform_rate =
      out.system.uniform_rate(UniformityView::Closed, 1e-6).value_or(built.uniform_rate);
  out.prop_names = built.prop_names;
  out.prop_masks.assign(built.prop_masks.size(),
                        std::vector<bool>(partition.num_blocks, false));
  for (StateId s = 0; s < n; ++s) {
    for (std::size_t p = 0; p < built.prop_masks.size(); ++p) {
      if (built.prop_masks[p][s]) out.prop_masks[p][partition.block_of[s]] = true;
    }
  }
  if (span) {
    span->metric("input_states", n);
    span->metric("output_states", partition.num_blocks);
    span->metric("prop_classes", classes.size());
  }
  return out;
}

PhaseType timing_phase_type(const TimingDecl& t) {
  switch (t.kind) {
    case TimingDecl::Kind::Exponential:
      return PhaseType::exponential(t.rate);
    case TimingDecl::Kind::Erlang:
      return PhaseType::erlang(t.phases, t.rate);
    case TimingDecl::Kind::Phases:
      return PhaseType::hypoexponential(t.rates);
  }
  throw ModelError("timing_phase_type: unreachable timing kind");
}

const std::vector<bool>& BuiltModel::mask(const std::string& name) const {
  for (std::size_t i = 0; i < prop_names.size(); ++i) {
    if (prop_names[i] == name) return prop_masks[i];
  }
  throw ModelError("model has no proposition named '" + name + "'");
}

bool BuiltModel::has_prop(const std::string& name) const {
  for (const std::string& n : prop_names) {
    if (n == name) return true;
  }
  return false;
}

BuiltModel build_model(const Model& m, const BuildOptions& options) {
  if (m.systems.empty()) {
    throw ModelError("build_model: model has no system declaration (run check_model first)");
  }
  return Lowering(m, options).run();
}

}  // namespace unicon::lang
