// Lowering of checked UNI models onto the analysis pipeline.
//
// build_model turns an AST that passed semantic analysis into the closed
// uniform IMC of its system expression: components become IMC leaves,
// elapse(..) nodes become El(Ph, fire, trigger) constraint IMCs, the
// composition expression maps 1:1 onto CompositionExpr, and the reachable
// product is explored under the closed-system urgency assumption.  Atomic
// propositions declared on component states are transferred exactly onto
// the product via the explorer's leaf-state tuples, and derived props are
// evaluated pointwise.  The result feeds analyze_timed_reachability
// (bisimulation minimization -> Sec. 4.1 transformation -> Algorithm 1).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ctmc/phase_type.hpp"
#include "imc/imc.hpp"
#include "lang/ast.hpp"
#include "support/run_guard.hpp"

namespace unicon {
class Telemetry;
}

namespace unicon::lang {

using unicon::Telemetry;

struct BuildOptions {
  /// Record human-readable "(s0,s1,...)" composite state names.
  bool record_names = false;
  /// Abort with ModelError when the product exceeds this many states.
  std::size_t max_states = static_cast<std::size_t>(-1);
  /// Explore under the closed-system urgency assumption (the analysis
  /// pipeline requires it; disable only for inspection of open fragments).
  bool urgent = true;
  /// Optional execution control, threaded into the state-space exploration
  /// (checked per explored state).  A budget stop raises BudgetError.
  RunGuard* guard = nullptr;
  /// Optional observability: build_model opens a "build" span (with the
  /// exploration's "compose" span as its child) recording product size,
  /// leaves and proposition counts.
  Telemetry* telemetry = nullptr;
};

struct BuiltModel {
  /// The explored (reachable) closed system IMC.
  Imc system;
  std::shared_ptr<ActionTable> actions;
  /// Closed-view uniform rate; 0 for purely interactive models.
  double uniform_rate = 0.0;
  /// Labels first (declaration order across components), then props.
  std::vector<std::string> prop_names;
  std::vector<std::vector<bool>> prop_masks;
  /// Number of composition leaves (components + elapse constraints).
  std::size_t num_leaves = 0;

  /// Mask of a label/prop by name; throws ModelError if unknown.
  const std::vector<bool>& mask(const std::string& name) const;
  bool has_prop(const std::string& name) const;
};

/// Lowers @p m (which must have passed check_model; behaviour on unchecked
/// models is undefined) and explores its system.  Throws UniformityError
/// if the explored system violates closed-view uniformity — a backstop;
/// semantically checked models compose uniformly by construction.
BuiltModel build_model(const Model& m, const BuildOptions& options = {});

/// Stochastic branching bisimulation quotient of a built model.  The
/// partition refines the proposition signature, so every label and prop
/// transfers exactly onto the quotient; timed reachability values are
/// preserved (Lemma 3 / Corollary 1: quotienting preserves uniformity).
/// @p guard is checked per refinement round (BudgetError on a stop);
/// @p telemetry records a "minimize" span (with the refinement's "bisim"
/// span as its child).
BuiltModel minimize_model(const BuiltModel& built, RunGuard* guard = nullptr,
                          Telemetry* telemetry = nullptr);

/// The phase-type distribution of a timing declaration.
PhaseType timing_phase_type(const TimingDecl& t);

}  // namespace unicon::lang
