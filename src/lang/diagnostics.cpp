#include "lang/diagnostics.hpp"

namespace unicon::lang {

const char* category_name(Diagnostic::Category c) {
  switch (c) {
    case Diagnostic::Category::Lex: return "lex error";
    case Diagnostic::Category::Parse: return "parse error";
    case Diagnostic::Category::Semantic: return "semantic error";
  }
  return "error";
}

std::string Diagnostic::str(const std::string& file) const {
  return file + ":" + std::to_string(loc.line) + ":" + std::to_string(loc.col) + ": " +
         category_name(category) + ": " + message;
}

LangError::LangError(Diagnostic diagnostic, const std::string& file)
    : ParseError(diagnostic.str(file)), diagnostic_(std::move(diagnostic)) {}

}  // namespace unicon::lang
