#include "lang/parser.hpp"

#include <utility>

#include "lang/lexer.hpp"
#include "lang/sema.hpp"

namespace unicon::lang {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, const std::string& file)
      : tokens_(std::move(tokens)), file_(file) {}

  Model run() {
    Model m;
    if (at_keyword("model")) {
      advance();
      m.name = expect(TokenKind::Ident, "model name").text;
      expect(TokenKind::Semi, "';' after model header");
    }
    while (!at(TokenKind::Eof)) {
      if (at_keyword("component")) {
        m.components.push_back(parse_component());
      } else if (at_keyword("timing")) {
        m.timings.push_back(parse_timing());
      } else if (at_keyword("let")) {
        advance();
        LetDecl let;
        let.name = name_token(expect(TokenKind::Ident, "let name"));
        expect(TokenKind::Equals, "'=' after let name");
        let.expr = parse_expr();
        expect(TokenKind::Semi, "';' after let definition");
        m.lets.push_back(std::move(let));
      } else if (at_keyword("system")) {
        SystemDecl sys;
        sys.loc = peek().loc;
        advance();
        expect(TokenKind::Equals, "'=' after 'system'");
        sys.expr = parse_expr();
        expect(TokenKind::Semi, "';' after system expression");
        m.systems.push_back(std::move(sys));
      } else if (at_keyword("prop")) {
        advance();
        PropDecl prop;
        prop.name = name_token(expect(TokenKind::Ident, "property name"));
        expect(TokenKind::Equals, "'=' after property name");
        prop.expr = parse_prop_or();
        expect(TokenKind::Semi, "';' after property definition");
        m.props.push_back(std::move(prop));
      } else {
        fail("expected 'component', 'timing', 'let', 'system' or 'prop', got " + describe(peek()));
      }
    }
    return m;
  }

 private:
  // --- token plumbing -----------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool at(TokenKind k) const { return peek().kind == k; }
  bool at_keyword(std::string_view kw) const {
    return peek().kind == TokenKind::Ident && peek().text == kw;
  }
  bool eat(TokenKind k) {
    if (!at(k)) return false;
    advance();
    return true;
  }

  [[noreturn]] void fail(std::string message, SourceLoc loc) const {
    throw LangError(Diagnostic{Diagnostic::Category::Parse, loc, std::move(message)}, file_);
  }
  [[noreturn]] void fail(std::string message) const { fail(std::move(message), peek().loc); }

  static std::string describe(const Token& t) {
    if (t.kind == TokenKind::Ident) return "'" + t.text + "'";
    if (t.kind == TokenKind::Number) return "number '" + t.text + "'";
    return token_kind_name(t.kind);
  }

  const Token& expect(TokenKind k, const std::string& what) {
    if (!at(k)) fail("expected " + what + ", got " + describe(peek()));
    return advance();
  }

  static Name name_token(const Token& t) { return Name{t.text, t.loc}; }

  Name parse_name(const std::string& what) { return name_token(expect(TokenKind::Ident, what)); }

  std::vector<Name> parse_name_list(const std::string& what) {
    std::vector<Name> names;
    names.push_back(parse_name(what));
    while (eat(TokenKind::Comma)) names.push_back(parse_name(what));
    return names;
  }

  double parse_number(const std::string& what, SourceLoc* loc = nullptr) {
    const Token& t = expect(TokenKind::Number, what);
    if (loc != nullptr) *loc = t.loc;
    return t.number;
  }

  // --- components ---------------------------------------------------------

  ComponentDecl parse_component() {
    advance();  // "component"
    ComponentDecl c;
    c.name = parse_name("component name");
    expect(TokenKind::LBrace, "'{' after component name");
    while (!eat(TokenKind::RBrace)) {
      if (at(TokenKind::Eof)) fail("unterminated component '" + c.name.text + "' (missing '}')");
      if (at_keyword("states") && peek(1).kind == TokenKind::Ident) {
        advance();
        for (Name& s : parse_name_list("state name")) c.states.push_back(std::move(s));
        expect(TokenKind::Semi, "';' after state list");
      } else if (at_keyword("initial") && peek(1).kind == TokenKind::Ident) {
        advance();
        c.initial = parse_name("initial state");
        c.has_initial = true;
        expect(TokenKind::Semi, "';' after initial state");
      } else if (at_keyword("label") && peek(1).kind == TokenKind::Ident) {
        advance();
        LabelDecl label;
        label.name = parse_name("label name");
        expect(TokenKind::Colon, "':' after label name");
        label.states = parse_name_list("state name");
        expect(TokenKind::Semi, "';' after label states");
        c.labels.push_back(std::move(label));
      } else if (at_keyword("rate") && peek(1).kind == TokenKind::Number) {
        advance();
        MarkovDecl t;
        t.rate = parse_number("transition rate", &t.rate_loc);
        expect(TokenKind::Colon, "':' after rate");
        t.from = parse_name("source state");
        expect(TokenKind::Arrow, "'->' in transition");
        t.to = parse_name("target state");
        expect(TokenKind::Semi, "';' after transition");
        c.markov.push_back(std::move(t));
      } else if (at(TokenKind::Ident)) {
        InteractiveDecl t;
        t.action = parse_name("action name");
        expect(TokenKind::Colon, "':' after action name");
        t.from = parse_name("source state");
        expect(TokenKind::Arrow, "'->' in transition");
        t.to = parse_name("target state");
        expect(TokenKind::Semi, "';' after transition");
        c.interactive.push_back(std::move(t));
      } else {
        fail("expected a component declaration, got " + describe(peek()));
      }
    }
    return c;
  }

  // --- timings ------------------------------------------------------------

  TimingDecl parse_timing() {
    advance();  // "timing"
    TimingDecl t;
    t.name = parse_name("timing name");
    expect(TokenKind::Equals, "'=' after timing name");
    const Name kind = parse_name("distribution (exponential, erlang or phases)");
    expect(TokenKind::LParen, "'(' after distribution name");
    if (kind.text == "exponential") {
      t.kind = TimingDecl::Kind::Exponential;
      t.rate = parse_number("rate", &t.params_loc);
    } else if (kind.text == "erlang") {
      t.kind = TimingDecl::Kind::Erlang;
      SourceLoc k_loc;
      const double k = parse_number("phase count", &k_loc);
      if (k < 1.0 || k != static_cast<double>(static_cast<unsigned>(k))) {
        fail("erlang phase count must be a positive integer", k_loc);
      }
      t.phases = static_cast<unsigned>(k);
      t.params_loc = k_loc;
      expect(TokenKind::Comma, "',' between erlang parameters");
      t.rate = parse_number("rate");
    } else if (kind.text == "phases") {
      t.kind = TimingDecl::Kind::Phases;
      t.rates.push_back(parse_number("phase rate", &t.params_loc));
      while (eat(TokenKind::Comma)) t.rates.push_back(parse_number("phase rate"));
    } else {
      fail("unknown distribution '" + kind.text + "' (expected exponential, erlang or phases)",
           kind.loc);
    }
    expect(TokenKind::RParen, "')' after distribution parameters");
    expect(TokenKind::Semi, "';' after timing definition");
    return t;
  }

  // --- composition expressions -------------------------------------------

  ExprPtr parse_expr() {
    if (at_keyword("hide")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Hide;
      e->loc = peek().loc;
      advance();
      expect(TokenKind::LBrace, "'{' after 'hide'");
      if (!at(TokenKind::RBrace)) e->hidden = parse_name_list("action name");
      expect(TokenKind::RBrace, "'}' after hidden actions");
      if (!at_keyword("in")) fail("expected 'in' after hide set, got " + describe(peek()));
      advance();
      e->child = parse_expr();
      return e;
    }
    return parse_parallel();
  }

  ExprPtr parse_parallel() {
    ExprPtr left = parse_primary();
    for (;;) {
      if (at(TokenKind::Interleave) || at(TokenKind::LSync)) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Parallel;
        e->loc = peek().loc;
        if (eat(TokenKind::Interleave)) {
          e->interleave = true;
        } else {
          advance();  // |[
          if (!at(TokenKind::RSync)) e->sync = parse_name_list("action name");
          expect(TokenKind::RSync, "']|' after synchronization set");
        }
        e->left = std::move(left);
        e->right = parse_primary();
        left = std::move(e);
      } else {
        return left;
      }
    }
  }

  ExprPtr parse_primary() {
    if (eat(TokenKind::LParen)) {
      ExprPtr e = parse_expr();
      expect(TokenKind::RParen, "')'");
      return e;
    }
    if (at_keyword("elapse") && peek(1).kind == TokenKind::LParen) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Elapse;
      e->loc = peek().loc;
      advance();
      advance();  // (
      e->fire = parse_name("fire action");
      expect(TokenKind::Comma, "',' after fire action");
      e->trigger = parse_name("trigger action");
      expect(TokenKind::Comma, "',' after trigger action");
      e->timing = parse_name("timing name");
      while (eat(TokenKind::Comma)) {
        if (at_keyword("running")) {
          advance();
          e->running = true;
        } else if (at_keyword("rate")) {
          advance();
          e->uniform_rate = parse_number("uniformization rate", &e->rate_loc);
        } else {
          fail("expected 'running' or 'rate' in elapse, got " + describe(peek()));
        }
      }
      expect(TokenKind::RParen, "')' after elapse arguments");
      return e;
    }
    if (at(TokenKind::Ident)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Ref;
      e->ref = name_token(advance());
      e->loc = e->ref.loc;
      return e;
    }
    fail("expected a composition expression, got " + describe(peek()));
  }

  // --- property expressions ----------------------------------------------

  PropExprPtr parse_prop_or() {
    PropExprPtr left = parse_prop_and();
    while (at(TokenKind::Pipe)) {
      auto e = std::make_unique<PropExpr>();
      e->kind = PropExpr::Kind::Or;
      e->loc = peek().loc;
      advance();
      e->a = std::move(left);
      e->b = parse_prop_and();
      left = std::move(e);
    }
    return left;
  }

  PropExprPtr parse_prop_and() {
    PropExprPtr left = parse_prop_unary();
    while (at(TokenKind::Amp)) {
      auto e = std::make_unique<PropExpr>();
      e->kind = PropExpr::Kind::And;
      e->loc = peek().loc;
      advance();
      e->a = std::move(left);
      e->b = parse_prop_unary();
      left = std::move(e);
    }
    return left;
  }

  PropExprPtr parse_prop_unary() {
    if (at(TokenKind::Bang)) {
      auto e = std::make_unique<PropExpr>();
      e->kind = PropExpr::Kind::Not;
      e->loc = peek().loc;
      advance();
      e->a = parse_prop_unary();
      return e;
    }
    if (eat(TokenKind::LParen)) {
      PropExprPtr e = parse_prop_or();
      expect(TokenKind::RParen, "')'");
      return e;
    }
    if (at(TokenKind::Ident)) {
      auto e = std::make_unique<PropExpr>();
      e->loc = peek().loc;
      if (at_keyword("true") || at_keyword("false")) {
        e->kind = PropExpr::Kind::Const;
        e->value = at_keyword("true");
        advance();
      } else {
        e->kind = PropExpr::Kind::Atom;
        e->atom = name_token(advance());
      }
      return e;
    }
    fail("expected a property expression, got " + describe(peek()));
  }

  std::vector<Token> tokens_;
  const std::string& file_;
  std::size_t pos_ = 0;
};

}  // namespace

Model parse_model(std::string_view source, const std::string& file) {
  return Parser(tokenize(source, file), file).run();
}

Model parse_and_check(std::string_view source, const std::string& file) {
  Model m = parse_model(source, file);
  const std::vector<Diagnostic> diagnostics = check_model(m);
  if (!diagnostics.empty()) throw LangError(diagnostics.front(), file);
  return m;
}

const ComponentDecl* Model::find_component(const std::string& n) const {
  for (const ComponentDecl& c : components) {
    if (c.name.text == n) return &c;
  }
  return nullptr;
}

const TimingDecl* Model::find_timing(const std::string& n) const {
  for (const TimingDecl& t : timings) {
    if (t.name.text == n) return &t;
  }
  return nullptr;
}

const LetDecl* Model::find_let(const std::string& n) const {
  for (const LetDecl& l : lets) {
    if (l.name.text == n) return &l;
  }
  return nullptr;
}

double TimingDecl::max_exit_rate() const {
  switch (kind) {
    case Kind::Exponential:
    case Kind::Erlang:
      return rate;
    case Kind::Phases: {
      double max = 0.0;
      for (double r : rates) max = r > max ? r : max;
      return max;
    }
  }
  return 0.0;
}

}  // namespace unicon::lang
