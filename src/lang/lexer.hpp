// Lexer of the UNI modeling language.
//
// Produces a flat token stream with 1-based line/column positions.  The
// lexer has no keyword table — keywords are ordinary identifiers that the
// parser interprets contextually, so state or action names may reuse words
// like "rate" without escaping.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/diagnostics.hpp"

namespace unicon::lang {

enum class TokenKind : std::uint8_t {
  Ident,       // [A-Za-z_][A-Za-z0-9_]*
  Number,      // decimal literal with optional fraction / exponent
  LBrace,      // {
  RBrace,      // }
  LParen,      // (
  RParen,      // )
  Semi,        // ;
  Comma,       // ,
  Colon,       // :
  Equals,      // =
  Arrow,       // ->
  Interleave,  // |||
  LSync,       // |[
  RSync,       // ]|
  Pipe,        // |
  Amp,         // &
  Bang,        // !
  Eof,
};

const char* token_kind_name(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::Eof;
  std::string text;     // identifier / number spelling
  double number = 0.0;  // value for Number tokens
  SourceLoc loc;
};

/// Tokenizes @p source.  Throws LangError (category Lex) on malformed
/// input; the result always ends with an Eof token.  @p file is used only
/// for error messages.
std::vector<Token> tokenize(std::string_view source, const std::string& file = "<input>");

}  // namespace unicon::lang
