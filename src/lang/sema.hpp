// Semantic analysis of UNI models.
//
// Rejects well-formed-but-meaningless models *before* any state space is
// generated: undeclared states/actions/names, tau in synchronization sets,
// malformed distributions — and, centrally, uniformity-by-construction
// violations (a component whose Markov exit rates differ across states, or
// an elapse whose uniformization rate is below the maximal phase exit
// rate) so that every model that passes this check composes into a uniform
// IMC by Lemmas 1 and 2 of the paper.
#pragma once

#include <vector>

#include "lang/ast.hpp"

namespace unicon::lang {

/// Checks @p m, returning every diagnostic found (empty = semantically
/// valid).  Diagnostics are ordered by declaration, not by severity; all
/// have category Semantic.
std::vector<Diagnostic> check_model(const Model& m);

}  // namespace unicon::lang
