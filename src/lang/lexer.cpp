#include "lang/lexer.hpp"

#include <cctype>
#include <charconv>

namespace unicon::lang {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool ident_char(char c) { return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

class Lexer {
 public:
  Lexer(std::string_view source, const std::string& file) : src_(source), file_(file) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_trivia();
      Token t = next();
      const bool eof = t.kind == TokenKind::Eof;
      tokens.push_back(std::move(t));
      if (eof) return tokens;
    }
  }

 private:
  [[noreturn]] void fail(SourceLoc loc, std::string message) const {
    throw LangError(Diagnostic{Diagnostic::Category::Lex, loc, std::move(message)}, file_);
  }

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++loc_.line;
      loc_.col = 1;
    } else {
      ++loc_.col;
    }
    return c;
  }

  void skip_trivia() {
    while (!done()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!done() && peek() != '\n') advance();
      } else {
        return;
      }
    }
  }

  Token next() {
    Token t;
    t.loc = loc_;
    if (done()) return t;  // Eof

    const char c = peek();
    if (ident_start(c)) {
      t.kind = TokenKind::Ident;
      while (!done() && ident_char(peek())) t.text.push_back(advance());
      return t;
    }
    if (digit(c) || (c == '.' && digit(peek(1)))) {
      t.kind = TokenKind::Number;
      t.text.push_back(advance());
      while (!done()) {
        const char n = peek();
        const bool sign_after_exp =
            (n == '+' || n == '-') && (t.text.back() == 'e' || t.text.back() == 'E');
        if (!ident_char(n) && n != '.' && !sign_after_exp) break;
        t.text.push_back(advance());
      }
      const char* begin = t.text.data();
      const char* end = begin + t.text.size();
      const auto [rest, ec] = std::from_chars(begin, end, t.number);
      if (ec != std::errc() || rest != end) fail(t.loc, "malformed number '" + t.text + "'");
      return t;
    }

    advance();
    switch (c) {
      case '{': t.kind = TokenKind::LBrace; return t;
      case '}': t.kind = TokenKind::RBrace; return t;
      case '(': t.kind = TokenKind::LParen; return t;
      case ')': t.kind = TokenKind::RParen; return t;
      case ';': t.kind = TokenKind::Semi; return t;
      case ',': t.kind = TokenKind::Comma; return t;
      case ':': t.kind = TokenKind::Colon; return t;
      case '=': t.kind = TokenKind::Equals; return t;
      case '&': t.kind = TokenKind::Amp; return t;
      case '!': t.kind = TokenKind::Bang; return t;
      case '-':
        if (peek() == '>') {
          advance();
          t.kind = TokenKind::Arrow;
          return t;
        }
        fail(t.loc, "stray '-' (expected '->')");
      case '|':
        if (peek() == '|' && peek(1) == '|') {
          advance();
          advance();
          t.kind = TokenKind::Interleave;
          return t;
        }
        if (peek() == '[') {
          advance();
          t.kind = TokenKind::LSync;
          return t;
        }
        t.kind = TokenKind::Pipe;
        return t;
      case ']':
        if (peek() == '|') {
          advance();
          t.kind = TokenKind::RSync;
          return t;
        }
        fail(t.loc, "stray ']' (expected ']|')");
      default:
        fail(t.loc, std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  const std::string& file_;
  std::size_t pos_ = 0;
  SourceLoc loc_;
};

}  // namespace

const char* token_kind_name(TokenKind k) {
  switch (k) {
    case TokenKind::Ident: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Semi: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Colon: return "':'";
    case TokenKind::Equals: return "'='";
    case TokenKind::Arrow: return "'->'";
    case TokenKind::Interleave: return "'|||'";
    case TokenKind::LSync: return "'|['";
    case TokenKind::RSync: return "']|'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Bang: return "'!'";
    case TokenKind::Eof: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view source, const std::string& file) {
  return Lexer(source, file).run();
}

}  // namespace unicon::lang
