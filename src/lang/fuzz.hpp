// Language fuzzing: seeded random UNI models and the print -> parse ->
// build round-trip harness wired into tools/unicon_fuzz (--lang).
//
// random_model generates closed, uniform-by-construction models in the
// paper's template shape (timed rings of interactive actions, each gated
// by its own elapse constraint, plus optional uniform Markov noise
// components), varied in component count, ring length, distributions,
// hiding, lets and property formulas.  run_lang_fuzz then checks, per
// seed, that the printed concrete syntax re-parses cleanly, that printing
// is idempotent, that both ASTs build identical state spaces with
// identical timed-reachability values, and that the declared propositions
// survive a .lab serialization round-trip.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lang/ast.hpp"

namespace unicon::lang {

/// Deterministic random model for @p seed (same seed, same model).
Model random_model(std::uint64_t seed);

struct LangFuzzConfig {
  std::uint64_t num_seeds = 100;
  std::uint64_t base_seed = 1;
  double time = 0.5;       // reachability horizon of the analysis smoke
  double epsilon = 1e-8;   // solver truncation error
};

struct LangFuzzFailure {
  std::uint64_t seed = 0;
  std::string message;
};

struct LangFuzzReport {
  std::uint64_t seeds_run = 0;
  std::uint64_t checks_run = 0;
  std::vector<LangFuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

using LangLogFn = std::function<void(const std::string&)>;

LangFuzzReport run_lang_fuzz(const LangFuzzConfig& config, const LangLogFn& log = {});

}  // namespace unicon::lang
