// Abstract syntax of the UNI modeling language.
//
// A model declares component IMCs (states, interactive and Markov
// transitions, atomic propositions), named phase-type timings, named
// composition fragments (let), exactly one system composition expression
// over |[..]| / ||| / hide / elapse, and named boolean properties over the
// components' atomic propositions.  See DESIGN.md Sec. 7 for the grammar.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lang/diagnostics.hpp"

namespace unicon::lang {

/// An identifier occurrence with its source position.
struct Name {
  std::string text;
  SourceLoc loc;
};

struct InteractiveDecl {
  Name action;  // "tau" names the internal action
  Name from;
  Name to;
};

struct MarkovDecl {
  double rate = 0.0;
  SourceLoc rate_loc;
  Name from;
  Name to;
};

/// "label p: s1, s2;" — atomic proposition p holds in the listed states.
struct LabelDecl {
  Name name;
  std::vector<Name> states;
};

struct ComponentDecl {
  Name name;
  std::vector<Name> states;
  Name initial;
  bool has_initial = false;
  std::vector<LabelDecl> labels;
  std::vector<InteractiveDecl> interactive;
  std::vector<MarkovDecl> markov;
};

/// "timing t = exponential(r) | erlang(k, r) | phases(r1, ..., rn);"
/// phases(..) is the hypoexponential chain — the explicit uniform
/// phase-type fed verbatim to the elapse operator.
struct TimingDecl {
  enum class Kind : std::uint8_t { Exponential, Erlang, Phases };

  Name name;
  Kind kind = Kind::Exponential;
  double rate = 0.0;          // Exponential / Erlang
  unsigned phases = 1;        // Erlang
  std::vector<double> rates;  // Phases
  SourceLoc params_loc;       // first numeric argument

  double max_exit_rate() const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Composition expressions, mapping 1:1 onto the CompositionExpr API.
struct Expr {
  enum class Kind : std::uint8_t {
    Ref,       // component or let reference
    Parallel,  // left |[sync]| right;  interleave == true for |||
    Hide,      // hide {actions} in child
    Elapse,    // elapse(fire, trigger, timing [, running] [, rate E])
  };

  Kind kind = Kind::Ref;
  SourceLoc loc;

  Name ref;  // Ref

  ExprPtr left, right;      // Parallel
  std::vector<Name> sync;   // Parallel
  bool interleave = false;  // Parallel: written as |||

  ExprPtr child;             // Hide
  std::vector<Name> hidden;  // Hide

  Name fire, trigger, timing;  // Elapse
  bool running = false;        // Elapse
  double uniform_rate = 0.0;   // Elapse (0 = maximal phase exit rate)
  SourceLoc rate_loc;          // Elapse
};

struct PropExpr;
using PropExprPtr = std::unique_ptr<PropExpr>;

/// Boolean formulas over atomic propositions and previously defined props.
struct PropExpr {
  enum class Kind : std::uint8_t { Atom, Const, Not, And, Or };

  Kind kind = Kind::Atom;
  SourceLoc loc;
  Name atom;            // Atom
  bool value = false;   // Const
  PropExprPtr a, b;     // Not (a), And/Or (a, b)
};

struct PropDecl {
  Name name;
  PropExprPtr expr;
};

struct SystemDecl {
  ExprPtr expr;
  SourceLoc loc;
};

struct LetDecl {
  Name name;
  ExprPtr expr;
};

struct Model {
  std::string name;  // optional "model <ident>;" header ("" if absent)
  std::vector<ComponentDecl> components;
  std::vector<TimingDecl> timings;
  std::vector<LetDecl> lets;
  std::vector<PropDecl> props;
  std::vector<SystemDecl> systems;  // sema enforces exactly one

  const ComponentDecl* find_component(const std::string& n) const;
  const TimingDecl* find_timing(const std::string& n) const;
  const LetDecl* find_let(const std::string& n) const;
};

}  // namespace unicon::lang
