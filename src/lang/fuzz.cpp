#include "lang/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <utility>

#include "core/analysis.hpp"
#include "io/tra.hpp"
#include "lang/build.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/sema.hpp"
#include "support/rng.hpp"

namespace unicon::lang {

namespace {

Name nm(std::string text) { return Name{std::move(text), SourceLoc{}}; }

ExprPtr ref_expr(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Ref;
  e->ref = nm(std::move(name));
  return e;
}

ExprPtr par_expr(ExprPtr left, std::vector<Name> sync, ExprPtr right) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Parallel;
  e->interleave = sync.empty();
  e->sync = std::move(sync);
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr hide_expr(std::vector<Name> hidden, ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Hide;
  e->hidden = std::move(hidden);
  e->child = std::move(child);
  return e;
}

ExprPtr elapse_expr(std::string fire, std::string trigger, std::string timing, bool running,
                    double uniform_rate) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Elapse;
  e->fire = nm(std::move(fire));
  e->trigger = nm(std::move(trigger));
  e->timing = nm(std::move(timing));
  e->running = running;
  e->uniform_rate = uniform_rate;
  return e;
}

PropExprPtr atom_prop(std::string name) {
  auto p = std::make_unique<PropExpr>();
  p->kind = PropExpr::Kind::Atom;
  p->atom = nm(std::move(name));
  return p;
}

PropExprPtr unary_prop(PropExpr::Kind kind, PropExprPtr a) {
  auto p = std::make_unique<PropExpr>();
  p->kind = kind;
  p->a = std::move(a);
  return p;
}

PropExprPtr binary_prop(PropExpr::Kind kind, PropExprPtr a, PropExprPtr b) {
  auto p = std::make_unique<PropExpr>();
  p->kind = kind;
  p->a = std::move(a);
  p->b = std::move(b);
  return p;
}

/// A rate drawn from [0.5, 4), rounded so the printed form stays short.
double random_rate(Rng& rng) {
  return 0.5 + static_cast<double>(rng.next_below(28)) * 0.125;
}

/// A random timing with at most 3 phases, named @p name.
TimingDecl random_timing(Rng& rng, std::string name) {
  TimingDecl t;
  t.name = nm(std::move(name));
  switch (rng.next_below(3)) {
    case 0:
      t.kind = TimingDecl::Kind::Exponential;
      t.rate = random_rate(rng);
      break;
    case 1:
      t.kind = TimingDecl::Kind::Erlang;
      t.phases = 1 + static_cast<unsigned>(rng.next_below(3));
      t.rate = random_rate(rng);
      break;
    default:
      t.kind = TimingDecl::Kind::Phases;
      t.rates.resize(1 + rng.next_below(3));
      for (double& r : t.rates) r = random_rate(rng);
      break;
  }
  return t;
}

/// Generates one timed ring: an interactive cycle s0 -a0-> s1 -a1-> ... -> s0
/// in which every action a_j is gated by its own elapse constraint (fire a_j,
/// trigger a_{j-1}); the constraint of the initial action starts running.
/// This is the paper's time-constrained-system template, so the closed
/// component is non-Zeno and uniform by construction.  Consecutive
/// constraints share actions (one's fire is the next one's trigger), so the
/// timers are folded with explicit overlap synchronization — interleaving
/// them would let a fire race past the re-arming trigger.
void add_ring(Model& m, Rng& rng, const std::string& prefix, unsigned len) {
  ComponentDecl c;
  c.name = nm(prefix);
  std::vector<std::string> actions;
  for (unsigned j = 0; j < len; ++j) {
    c.states.push_back(nm("s" + std::to_string(j)));
    actions.push_back(prefix + "_a" + std::to_string(j));
  }
  c.initial = nm("s0");
  c.has_initial = true;
  c.labels.push_back(LabelDecl{nm(prefix + "_start"), {nm("s0")}});
  if (rng.next_below(2) == 0) {
    c.labels.push_back(LabelDecl{nm(prefix + "_run"), {nm("s1")}});
  }
  for (unsigned j = 0; j < len; ++j) {
    c.interactive.push_back(InteractiveDecl{nm(actions[j]), nm("s" + std::to_string(j)),
                                            nm("s" + std::to_string((j + 1) % len))});
  }
  m.components.push_back(std::move(c));

  // One constraint per action; fold with synchronization on the overlap of
  // each constraint's {fire, trigger} with the alphabet accumulated so far.
  ExprPtr timers;
  std::vector<std::string> alphabet;
  for (unsigned j = 0; j < len; ++j) {
    const std::string timing_name = prefix + "_t" + std::to_string(j);
    TimingDecl timing = random_timing(rng, timing_name);
    const std::string& fire = actions[j];
    const std::string& trigger = actions[(j + len - 1) % len];
    double uniform_rate = 0.0;
    if (rng.next_below(4) == 0) {
      uniform_rate = timing.max_exit_rate() + static_cast<double>(1 + rng.next_below(8)) * 0.25;
    }
    m.timings.push_back(std::move(timing));
    ExprPtr timer = elapse_expr(fire, trigger, timing_name, /*running=*/j == 0, uniform_rate);
    if (!timers) {
      timers = std::move(timer);
    } else {
      std::vector<Name> overlap;
      for (const std::string& a : {fire, trigger}) {
        if (std::find(alphabet.begin(), alphabet.end(), a) != alphabet.end()) {
          overlap.push_back(nm(a));
        }
      }
      timers = par_expr(std::move(timers), std::move(overlap), std::move(timer));
    }
    for (const std::string& a : {fire, trigger}) {
      if (std::find(alphabet.begin(), alphabet.end(), a) == alphabet.end()) alphabet.push_back(a);
    }
  }
  m.lets.push_back(LetDecl{nm(prefix + "_timers"), std::move(timers)});

  std::vector<Name> sync;
  for (const std::string& a : actions) sync.push_back(nm(a));
  ExprPtr closed = par_expr(ref_expr(prefix), std::move(sync), ref_expr(prefix + "_timers"));
  if (rng.next_below(4) != 0) {
    std::vector<Name> hidden;
    for (const std::string& a : actions) hidden.push_back(nm(a));
    closed = hide_expr(std::move(hidden), std::move(closed));
  }
  m.lets.push_back(LetDecl{nm(prefix + "_sys"), std::move(closed)});
}

/// A two-state uniform CTMC component (equal exit rates, so it passes the
/// per-component uniformity check) that interleaves with the timed rings.
void add_noise(Model& m, Rng& rng) {
  const double rate = random_rate(rng);
  ComponentDecl c;
  c.name = nm("noise");
  c.states = {nm("lo"), nm("hi")};
  c.initial = nm("lo");
  c.has_initial = true;
  c.labels.push_back(LabelDecl{nm("noise_hi"), {nm("hi")}});
  c.markov.push_back(MarkovDecl{rate, SourceLoc{}, nm("lo"), nm("hi")});
  c.markov.push_back(MarkovDecl{rate, SourceLoc{}, nm("hi"), nm("lo")});
  m.components.push_back(std::move(c));
}

PropExprPtr random_goal(Rng& rng, const std::vector<std::string>& labels) {
  PropExprPtr a = atom_prop(labels[rng.next_below(labels.size())]);
  switch (rng.next_below(4)) {
    case 0:
      return a;
    case 1:
      return unary_prop(PropExpr::Kind::Not, std::move(a));
    case 2:
      return binary_prop(PropExpr::Kind::And, std::move(a),
                         atom_prop(labels[rng.next_below(labels.size())]));
    default:
      return binary_prop(PropExpr::Kind::Or, std::move(a),
                         atom_prop(labels[rng.next_below(labels.size())]));
  }
}

}  // namespace

Model random_model(std::uint64_t seed) {
  Rng rng(derive_seed(0x756e69636f6e21ull, seed));
  Model m;
  m.name = "fuzz_" + std::to_string(seed);

  const unsigned num_rings = 1 + static_cast<unsigned>(rng.next_below(2));
  // Two rings multiply their (already product-shaped) state spaces, so keep
  // the rings shorter in that case.
  const unsigned max_len = num_rings == 2 ? 3 : 4;
  for (unsigned i = 0; i < num_rings; ++i) {
    const unsigned len = 2 + static_cast<unsigned>(rng.next_below(max_len - 1));
    add_ring(m, rng, "c" + std::to_string(i), len);
  }
  const bool noise = rng.next_below(3) == 0;
  if (noise) add_noise(m, rng);

  ExprPtr system = ref_expr("c0_sys");
  for (unsigned i = 1; i < num_rings; ++i) {
    system = par_expr(std::move(system), {}, ref_expr("c" + std::to_string(i) + "_sys"));
  }
  if (noise) system = par_expr(std::move(system), {}, ref_expr("noise"));
  m.systems.push_back(SystemDecl{std::move(system), SourceLoc{}});

  std::vector<std::string> labels;
  for (const ComponentDecl& c : m.components) {
    for (const LabelDecl& l : c.labels) labels.push_back(l.name.text);
  }
  m.props.push_back(PropDecl{nm("goal"), random_goal(rng, labels)});
  if (rng.next_below(2) == 0) {
    m.props.push_back(PropDecl{nm("excited"),
                               binary_prop(PropExpr::Kind::And, atom_prop("goal"),
                                           unary_prop(PropExpr::Kind::Not, atom_prop(labels[0])))});
  }
  return m;
}

LangFuzzReport run_lang_fuzz(const LangFuzzConfig& config, const LangLogFn& log) {
  LangFuzzReport report;
  const auto fail = [&](std::uint64_t seed, std::string message) {
    if (log) log("lang seed " + std::to_string(seed) + ": FAIL: " + message);
    report.failures.push_back(LangFuzzFailure{seed, std::move(message)});
  };

  for (std::uint64_t i = 0; i < config.num_seeds; ++i) {
    const std::uint64_t seed = config.base_seed + i;
    ++report.seeds_run;
    try {
      const Model m = random_model(seed);
      const std::string text = print_model(m);

      // 1. The printed concrete syntax parses and checks cleanly.
      Model reparsed;
      try {
        reparsed = parse_model(text, "<fuzz>");
      } catch (const LangError& e) {
        fail(seed, std::string("printed model does not parse: ") + e.what() + "\n" + text);
        continue;
      }
      const std::vector<Diagnostic> diags = check_model(reparsed);
      if (!diags.empty()) {
        fail(seed, "printed model does not check: " + diags.front().str("<fuzz>") + "\n" + text);
        continue;
      }
      ++report.checks_run;

      // 2. Printing is idempotent.
      if (print_model(reparsed) != text) {
        fail(seed, "printing is not idempotent\n" + text);
        continue;
      }
      ++report.checks_run;

      // 3. Both ASTs lower to the same state space with identical props.
      BuildOptions build_options;
      build_options.max_states = 200000;
      const BuiltModel original = build_model(m, build_options);
      const BuiltModel rebuilt = build_model(reparsed, build_options);
      if (original.system.num_states() != rebuilt.system.num_states() ||
          original.system.num_interactive_transitions() !=
              rebuilt.system.num_interactive_transitions() ||
          original.system.num_markov_transitions() != rebuilt.system.num_markov_transitions() ||
          original.uniform_rate != rebuilt.uniform_rate) {
        fail(seed, "rebuilt system differs from the original\n" + text);
        continue;
      }
      if (original.prop_names != rebuilt.prop_names || original.prop_masks != rebuilt.prop_masks) {
        fail(seed, "rebuilt propositions differ from the original\n" + text);
        continue;
      }
      ++report.checks_run;

      // 4. Analysis smoke: both builds give the same (sane) probability.
      UimcAnalysisOptions analysis;
      analysis.reachability.epsilon = config.epsilon;
      const double p1 =
          analyze_timed_reachability(original.system, original.mask("goal"), config.time, analysis)
              .value;
      const double p2 =
          analyze_timed_reachability(rebuilt.system, rebuilt.mask("goal"), config.time, analysis)
              .value;
      if (p1 != p2) {
        fail(seed, "analysis values diverge: " + std::to_string(p1) + " vs " + std::to_string(p2));
        continue;
      }
      if (!(p1 >= -1e-9 && p1 <= 1.0 + 1e-9)) {
        fail(seed, "analysis value out of range: " + std::to_string(p1));
        continue;
      }
      ++report.checks_run;

      // 5. The propositions survive a .lab serialization round-trip
      //    (all-false masks are not representable in the format, so they
      //    are excluded from the comparison).
      io::LabelMasks written;
      for (std::size_t p = 0; p < rebuilt.prop_names.size(); ++p) {
        const std::vector<bool>& mask = rebuilt.prop_masks[p];
        if (std::find(mask.begin(), mask.end(), true) != mask.end()) {
          written.emplace_back(rebuilt.prop_names[p], mask);
        }
      }
      std::stringstream lab;
      io::write_labels(lab, written);
      io::LabelMasks reread = io::read_labels(lab, rebuilt.system.num_states());
      std::sort(written.begin(), written.end());
      std::sort(reread.begin(), reread.end());
      if (written != reread) {
        fail(seed, ".lab round-trip changed the propositions");
        continue;
      }
      ++report.checks_run;

      if (log) {
        std::ostringstream line;
        line << "lang seed " << seed << ": ok (" << original.system.num_states() << " states, E="
             << original.uniform_rate << ", p=" << p1 << ")";
        log(line.str());
      }
    } catch (const std::exception& e) {
      fail(seed, std::string("unexpected exception: ") + e.what());
    }
  }
  return report;
}

}  // namespace unicon::lang
