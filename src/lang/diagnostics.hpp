// Source locations and diagnostics of the UNI modeling language.
//
// Every diagnostic carries the 1-based line/column of the offending token
// plus a category telling which pipeline stage rejected the input: Lex
// (malformed characters/numbers), Parse (grammar violations) or Semantic
// (well-formed but meaningless — undeclared names, tau in sync sets,
// uniformity-by-construction violations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/errors.hpp"

namespace unicon::lang {

struct SourceLoc {
  std::uint32_t line = 1;  // 1-based
  std::uint32_t col = 1;   // 1-based, in characters
};

struct Diagnostic {
  enum class Category : std::uint8_t { Lex, Parse, Semantic };

  Category category = Category::Parse;
  SourceLoc loc;
  std::string message;

  /// "file:line:col: category: message" (the file name is supplied by the
  /// caller so that in-memory sources can use a placeholder).
  std::string str(const std::string& file) const;
};

const char* category_name(Diagnostic::Category c);

/// Thrown by the fail-fast entry points; carries the (first) diagnostic.
class LangError : public ParseError {
 public:
  LangError(Diagnostic diagnostic, const std::string& file);

  const Diagnostic& diagnostic() const { return diagnostic_; }

 private:
  Diagnostic diagnostic_;
};

}  // namespace unicon::lang
