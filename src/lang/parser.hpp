// Recursive-descent parser of the UNI modeling language.
//
// Grammar (EBNF; see DESIGN.md Sec. 7 for commentary):
//
//   model      := header? item*
//   header     := "model" IDENT ";"
//   item       := component | timing | letdef | system | prop
//   component  := "component" IDENT "{" cdecl* "}"
//   cdecl      := "states" IDENT ("," IDENT)* ";"
//              |  "initial" IDENT ";"
//              |  "label" IDENT ":" IDENT ("," IDENT)* ";"
//              |  "rate" NUMBER ":" IDENT "->" IDENT ";"
//              |  IDENT ":" IDENT "->" IDENT ";"
//   timing     := "timing" IDENT "=" dist ";"
//   dist       := "exponential" "(" NUMBER ")"
//              |  "erlang" "(" NUMBER "," NUMBER ")"
//              |  "phases" "(" NUMBER ("," NUMBER)* ")"
//   letdef     := "let" IDENT "=" expr ";"
//   system     := "system" "=" expr ";"
//   expr       := "hide" "{" names? "}" "in" expr | par
//   par        := primary (("|||" | "|[" names? "]|") primary)*
//   primary    := "(" expr ")" | elapse | IDENT
//   elapse     := "elapse" "(" IDENT "," IDENT "," IDENT
//                 ("," ("running" | "rate" NUMBER))* ")"
//   prop       := "prop" IDENT "=" pexpr ";"
//   pexpr      := pterm ("|" pterm)*
//   pterm      := punary ("&" punary)*
//   punary     := "!" punary | "(" pexpr ")" | "true" | "false" | IDENT
//   names      := IDENT ("," IDENT)*
//
// Keywords are contextual; parallel operators associate to the left.
#pragma once

#include <string>
#include <string_view>

#include "lang/ast.hpp"

namespace unicon::lang {

/// Parses @p source into an AST.  Throws LangError (category Lex or Parse)
/// on the first malformed token or grammar violation.  The result is
/// syntactically well-formed but not yet semantically checked.
Model parse_model(std::string_view source, const std::string& file = "<input>");

/// parse_model followed by semantic analysis (sema.hpp); throws LangError
/// with the first semantic diagnostic.  The returned model is safe to feed
/// to build_model.
Model parse_and_check(std::string_view source, const std::string& file = "<input>");

}  // namespace unicon::lang
