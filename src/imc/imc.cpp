#include "imc/imc.hpp"

#include <algorithm>
#include <cmath>

#include "support/errors.hpp"
#include "support/bit_vector.hpp"

namespace unicon {

namespace {
const std::string kEmptyName;
}

const std::string& Imc::state_name(StateId s) const {
  if (s < state_names_.size()) return state_names_[s];
  return kEmptyName;
}

void Imc::index() {
  std::sort(itrans_.begin(), itrans_.end(), [](const LtsTransition& a, const LtsTransition& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.action != b.action) return a.action < b.action;
    return a.to < b.to;
  });
  itrans_.erase(std::unique(itrans_.begin(), itrans_.end()), itrans_.end());
  std::sort(mtrans_.begin(), mtrans_.end(), [](const MarkovTransition& a, const MarkovTransition& b) {
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });

  irow_.assign(num_states_ + 1, 0);
  for (const auto& t : itrans_) ++irow_[t.from + 1];
  for (std::size_t i = 0; i < num_states_; ++i) irow_[i + 1] += irow_[i];

  mrow_.assign(num_states_ + 1, 0);
  for (const auto& t : mtrans_) ++mrow_[t.from + 1];
  for (std::size_t i = 0; i < num_states_; ++i) mrow_[i + 1] += mrow_[i];
}

StateKind Imc::kind(StateId s) const {
  const bool i = has_interactive(s);
  const bool m = has_markov(s);
  if (i && m) return StateKind::Hybrid;
  if (i) return StateKind::Interactive;
  if (m) return StateKind::Markov;
  return StateKind::Absorbing;
}

bool Imc::has_tau(StateId s) const {
  const auto ts = out_interactive(s);
  // Transitions are sorted by action; tau has the smallest id.
  return !ts.empty() && ts.front().action == kTau;
}

double Imc::exit_rate(StateId s) const {
  double e = 0.0;
  for (const MarkovTransition& t : out_markov(s)) e += t.rate;
  return e;
}

double Imc::rate(StateId s, StateId to) const {
  double e = 0.0;
  for (const MarkovTransition& t : out_markov(s)) {
    if (t.to == to) e += t.rate;
  }
  return e;
}

std::optional<double> Imc::uniform_rate(UniformityView view, double tol) const {
  // Determine reachable states first; unreachable states may carry arbitrary
  // rates without affecting behaviour (Sec. 3).
  BitVector reach(num_states_, false);
  std::vector<StateId> stack{initial_};
  reach[initial_] = true;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const auto& t : out_interactive(s)) {
      if (!reach[t.to]) { reach[t.to] = true; stack.push_back(t.to); }
    }
    for (const auto& t : out_markov(s)) {
      if (!reach[t.to]) { reach[t.to] = true; stack.push_back(t.to); }
    }
  }

  std::optional<double> rate;
  for (StateId s = 0; s < num_states_; ++s) {
    if (!reach[s]) continue;
    const bool constrained =
        view == UniformityView::Open ? stable(s) : !has_interactive(s);
    if (!constrained) continue;
    const double e = exit_rate(s);
    if (!rate) {
      rate = e;
    } else if (std::fabs(*rate - e) > tol) {
      return std::nullopt;
    }
  }
  return rate ? rate : std::optional<double>(0.0);
}

Imc Imc::uniformize(double rate, UniformityView view) const {
  double target = rate;
  if (target == 0.0) {
    for (StateId s = 0; s < num_states_; ++s) {
      const bool constrained =
          view == UniformityView::Open ? stable(s) : !has_interactive(s);
      if (constrained) target = std::max(target, exit_rate(s));
    }
  }
  Imc result = *this;
  for (StateId s = 0; s < num_states_; ++s) {
    const bool constrained =
        view == UniformityView::Open ? stable(s) : !has_interactive(s);
    if (!constrained) continue;
    const double pad = target - exit_rate(s);
    if (pad < -1e-9) {
      throw UniformityError("Imc::uniformize: rate below exit rate of a constrained state");
    }
    if (pad > 1e-12) result.mtrans_.push_back(MarkovTransition{s, pad, s});
  }
  result.index();
  return result;
}

Imc Imc::hide(const std::unordered_set<Action>& hidden) const {
  Imc result = *this;
  for (LtsTransition& t : result.itrans_) {
    if (hidden.count(t.action) != 0) t.action = kTau;
  }
  result.index();
  return result;
}

Imc Imc::hide_all() const {
  Imc result = *this;
  for (LtsTransition& t : result.itrans_) t.action = kTau;
  result.index();
  return result;
}

Imc Imc::relabel(const std::unordered_map<Action, Action>& renaming) const {
  Imc result = *this;
  for (LtsTransition& t : result.itrans_) {
    auto it = renaming.find(t.action);
    if (it != renaming.end()) t.action = it->second;
  }
  result.index();
  return result;
}

Imc Imc::reachable() const {
  std::vector<StateId> remap(num_states_, kNoState);
  std::vector<StateId> order{initial_};
  std::vector<StateId> stack{initial_};
  remap[initial_] = 0;
  StateId next_id = 1;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const auto& t : out_interactive(s)) {
      if (remap[t.to] == kNoState) {
        remap[t.to] = next_id++;
        order.push_back(t.to);
        stack.push_back(t.to);
      }
    }
    for (const auto& t : out_markov(s)) {
      if (remap[t.to] == kNoState) {
        remap[t.to] = next_id++;
        order.push_back(t.to);
        stack.push_back(t.to);
      }
    }
  }

  ImcBuilder b(actions_);
  for (StateId old : order) b.add_state(state_name(old));
  b.set_initial(0);
  for (const auto& t : itrans_) {
    if (remap[t.from] != kNoState) b.add_interactive(remap[t.from], t.action, remap[t.to]);
  }
  for (const auto& t : mtrans_) {
    if (remap[t.from] != kNoState) b.add_markov(remap[t.from], t.rate, remap[t.to]);
  }
  return b.build();
}

std::vector<Action> Imc::visible_alphabet() const {
  BitVector seen(actions_->size(), false);
  for (const auto& t : itrans_) {
    if (t.action != kTau) seen[t.action] = true;
  }
  std::vector<Action> result;
  for (Action a = 0; a < seen.size(); ++a) {
    if (seen[a]) result.push_back(a);
  }
  return result;
}

Imc Imc::rename_states(std::vector<std::string> names) const {
  if (names.size() != num_states_) throw ModelError("rename_states: size mismatch");
  Imc result = *this;
  result.state_names_ = std::move(names);
  return result;
}

std::size_t Imc::memory_bytes() const {
  return itrans_.size() * sizeof(LtsTransition) + irow_.size() * sizeof(std::uint64_t) +
         mtrans_.size() * sizeof(MarkovTransition) + mrow_.size() * sizeof(std::uint64_t);
}

ImcBuilder::ImcBuilder(std::shared_ptr<ActionTable> actions)
    : actions_(actions ? std::move(actions) : std::make_shared<ActionTable>()) {}

StateId ImcBuilder::add_state(std::string name) {
  state_names_.push_back(std::move(name));
  return static_cast<StateId>(num_states_++);
}

void ImcBuilder::ensure_states(std::size_t n) {
  while (num_states_ < n) add_state();
}

void ImcBuilder::add_interactive(StateId from, Action action, StateId to) {
  itrans_.push_back(LtsTransition{from, action, to});
}

void ImcBuilder::add_interactive(StateId from, std::string_view action, StateId to) {
  add_interactive(from, actions_->intern(action), to);
}

void ImcBuilder::add_markov(StateId from, double rate, StateId to) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw ModelError("Imc: Markov transition rate must be positive and finite");
  }
  mtrans_.push_back(MarkovTransition{from, rate, to});
}

Imc ImcBuilder::build() {
  if (num_states_ == 0) throw ModelError("Imc: at least one state required");
  for (const auto& t : itrans_) {
    if (t.from >= num_states_ || t.to >= num_states_) {
      throw ModelError("Imc: interactive transition references unknown state");
    }
  }
  for (const auto& t : mtrans_) {
    if (t.from >= num_states_ || t.to >= num_states_) {
      throw ModelError("Imc: Markov transition references unknown state");
    }
  }
  if (initial_ >= num_states_) throw ModelError("Imc: initial state out of range");

  Imc imc;
  imc.actions_ = actions_;
  imc.num_states_ = num_states_;
  imc.initial_ = initial_;
  imc.itrans_ = std::move(itrans_);
  imc.mtrans_ = std::move(mtrans_);
  imc.state_names_ = std::move(state_names_);
  imc.index();

  num_states_ = 0;
  initial_ = 0;
  itrans_.clear();
  mtrans_.clear();
  state_names_.clear();
  return imc;
}

Imc imc_from_lts(const Lts& lts) {
  ImcBuilder b(lts.action_table());
  for (StateId s = 0; s < lts.num_states(); ++s) b.add_state(lts.state_name(s));
  b.set_initial(lts.initial());
  for (const LtsTransition& t : lts.transitions()) b.add_interactive(t.from, t.action, t.to);
  return b.build();
}

Imc imc_from_ctmc(const Ctmc& chain, std::shared_ptr<ActionTable> actions) {
  ImcBuilder b(std::move(actions));
  for (StateId s = 0; s < chain.num_states(); ++s) b.add_state();
  b.set_initial(chain.initial());
  for (StateId s = 0; s < chain.num_states(); ++s) {
    for (const SparseEntry& t : chain.out(s)) b.add_markov(s, t.value, t.col);
  }
  return b.build();
}

}  // namespace unicon
