#include "imc/compose.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>

#include "support/errors.hpp"
#include "support/telemetry.hpp"

namespace unicon {

namespace {

/// Hash for composite states (vectors of component state ids).
struct TupleHash {
  std::size_t operator()(const std::vector<StateId>& v) const {
    std::size_t h = 0xcbf29ce484222325ull;
    for (StateId s : v) {
      h ^= s;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// A pending update set: which leaves move to which local states.
using Updates = std::vector<std::pair<std::uint32_t, StateId>>;

struct IMove {
  Action action;
  Updates updates;
};

struct MMove {
  double rate;
  std::uint32_t leaf;
  StateId to;
};

}  // namespace

CompositionExpr CompositionExpr::leaf(Imc imc) {
  CompositionExpr e;
  e.actions_ = imc.action_table();
  e.leaves_.push_back(std::move(imc));
  Node n;
  n.kind = NodeKind::Leaf;
  n.leaf = 0;
  e.nodes_.push_back(std::move(n));
  e.root_ = 0;
  return e;
}

CompositionExpr CompositionExpr::combine(CompositionExpr&& a, CompositionExpr&& b, Node&& parent) {
  if (a.actions_ != b.actions_) {
    throw ModelError("CompositionExpr: components must share one ActionTable");
  }
  CompositionExpr e;
  e.actions_ = a.actions_;
  e.leaves_ = std::move(a.leaves_);
  e.nodes_ = std::move(a.nodes_);
  const std::size_t leaf_offset = e.leaves_.size();
  const std::size_t node_offset = e.nodes_.size();
  for (Imc& m : b.leaves_) e.leaves_.push_back(std::move(m));
  for (Node& n : b.nodes_) {
    Node copy = std::move(n);
    if (copy.kind == NodeKind::Leaf) {
      copy.leaf += leaf_offset;
    } else if (copy.kind == NodeKind::Parallel) {
      copy.left += node_offset;
      copy.right += node_offset;
    } else {
      copy.child += node_offset;
    }
    e.nodes_.push_back(std::move(copy));
  }
  parent.left = a.root_;
  parent.right = b.root_ + node_offset;
  e.nodes_.push_back(std::move(parent));
  e.root_ = e.nodes_.size() - 1;
  return e;
}

CompositionExpr CompositionExpr::parallel(CompositionExpr left, std::unordered_set<Action> sync,
                                          CompositionExpr right) {
  if (sync.count(kTau) != 0) {
    throw ModelError("CompositionExpr: tau cannot be in a synchronization set");
  }
  Node n;
  n.kind = NodeKind::Parallel;
  n.sync = std::move(sync);
  return combine(std::move(left), std::move(right), std::move(n));
}

CompositionExpr CompositionExpr::interleave(CompositionExpr left, CompositionExpr right) {
  return parallel(std::move(left), {}, std::move(right));
}

CompositionExpr CompositionExpr::hide(CompositionExpr inner, std::unordered_set<Action> hidden) {
  CompositionExpr e = std::move(inner);
  Node n;
  n.kind = NodeKind::Hide;
  n.child = e.root_;
  n.hidden = std::move(hidden);
  e.nodes_.push_back(std::move(n));
  e.root_ = e.nodes_.size() - 1;
  return e;
}

CompositionExpr CompositionExpr::hide_all(CompositionExpr inner) {
  CompositionExpr e = std::move(inner);
  Node n;
  n.kind = NodeKind::Hide;
  n.child = e.root_;
  n.hide_everything = true;
  e.nodes_.push_back(std::move(n));
  e.root_ = e.nodes_.size() - 1;
  return e;
}

/// Performs the reachable-state exploration of a composition expression.
class ComposeExplorer {
 public:
  ComposeExplorer(const CompositionExpr& expr, const ExploreOptions& options)
      : expr_(expr), options_(options) {}

  Imc run() {
    std::optional<Telemetry::Span> span;
    if (options_.telemetry != nullptr) span.emplace(options_.telemetry->span("compose"));

    ImcBuilder builder(expr_.actions_);
    if (options_.record_tuples != nullptr) options_.record_tuples->clear();

    std::vector<StateId> initial(expr_.leaves_.size());
    for (std::size_t i = 0; i < expr_.leaves_.size(); ++i) initial[i] = expr_.leaves_[i].initial();

    std::uint64_t dedup_hits = 0;
    std::uint64_t interactive_added = 0;
    std::uint64_t markov_added = 0;
    std::size_t peak_frontier = 0;

    std::unordered_map<std::vector<StateId>, StateId, TupleHash> ids;
    std::vector<std::vector<StateId>> frontier;
    auto intern_state = [&](const std::vector<StateId>& tuple) -> StateId {
      auto it = ids.find(tuple);
      if (it != ids.end()) {
        ++dedup_hits;
        return it->second;
      }
      if (ids.size() >= options_.max_states) {
        throw ModelError("CompositionExpr::explore: state limit exceeded");
      }
      const StateId id = builder.add_state(options_.record_names ? name_of(tuple) : std::string());
      if (options_.record_tuples != nullptr) options_.record_tuples->push_back(tuple);
      ids.emplace(tuple, id);
      frontier.push_back(tuple);
      return id;
    };

    const StateId init_id = intern_state(initial);
    builder.set_initial(init_id);

    std::vector<IMove> imoves;
    std::vector<MMove> mmoves;
    std::size_t cursor = 0;
    while (cursor < frontier.size()) {
      if (options_.guard != nullptr) options_.guard->check("compose");
      peak_frontier = std::max(peak_frontier, frontier.size() - cursor);
      const std::vector<StateId> tuple = frontier[cursor++];
      const StateId from = ids.at(tuple);

      imoves.clear();
      collect_interactive(expr_.root_, tuple, imoves);
      for (const IMove& m : imoves) {
        std::vector<StateId> next = tuple;
        for (const auto& [leaf, to] : m.updates) next[leaf] = to;
        builder.add_interactive(from, m.action, intern_state(next));
        ++interactive_added;
      }

      if (options_.urgent && !imoves.empty()) continue;

      mmoves.clear();
      collect_markov(expr_.root_, tuple, mmoves);
      for (const MMove& m : mmoves) {
        std::vector<StateId> next = tuple;
        next[m.leaf] = m.to;
        builder.add_markov(from, m.rate, intern_state(next));
        ++markov_added;
      }
    }

    if (span) {
      span->metric("leaves", expr_.leaves_.size());
      span->metric("states", ids.size());
      span->metric("interactive_transitions", interactive_added);
      span->metric("markov_transitions", markov_added);
      span->metric("dedup_hits", dedup_hits);
      span->metric("peak_frontier", peak_frontier);
    }
    return builder.build();
  }

 private:
  std::string name_of(const std::vector<StateId>& tuple) const {
    std::string name = "(";
    for (std::size_t i = 0; i < tuple.size(); ++i) {
      if (i) name += ',';
      const std::string& local = expr_.leaves_[i].state_name(tuple[i]);
      name += local.empty() ? std::to_string(tuple[i]) : local;
    }
    name += ')';
    return name;
  }

  void collect_interactive(std::size_t node_idx, const std::vector<StateId>& tuple,
                           std::vector<IMove>& out) const {
    const auto& node = expr_.nodes_[node_idx];
    switch (node.kind) {
      case CompositionExpr::NodeKind::Leaf: {
        const Imc& m = expr_.leaves_[node.leaf];
        for (const LtsTransition& t : m.out_interactive(tuple[node.leaf])) {
          out.push_back(IMove{t.action, {{static_cast<std::uint32_t>(node.leaf), t.to}}});
        }
        break;
      }
      case CompositionExpr::NodeKind::Parallel: {
        std::vector<IMove> left, right;
        collect_interactive(node.left, tuple, left);
        collect_interactive(node.right, tuple, right);
        for (const IMove& l : left) {
          if (node.sync.count(l.action) == 0) out.push_back(l);
        }
        for (const IMove& r : right) {
          if (node.sync.count(r.action) == 0) out.push_back(r);
        }
        for (const IMove& l : left) {
          if (node.sync.count(l.action) == 0) continue;
          for (const IMove& r : right) {
            if (r.action != l.action) continue;
            IMove merged{l.action, l.updates};
            merged.updates.insert(merged.updates.end(), r.updates.begin(), r.updates.end());
            out.push_back(std::move(merged));
          }
        }
        break;
      }
      case CompositionExpr::NodeKind::Hide: {
        std::vector<IMove> inner;
        collect_interactive(node.child, tuple, inner);
        for (IMove& m : inner) {
          if (m.action != kTau &&
              (node.hide_everything || node.hidden.count(m.action) != 0)) {
            m.action = kTau;
          }
          out.push_back(std::move(m));
        }
        break;
      }
    }
  }

  void collect_markov(std::size_t node_idx, const std::vector<StateId>& tuple,
                      std::vector<MMove>& out) const {
    const auto& node = expr_.nodes_[node_idx];
    switch (node.kind) {
      case CompositionExpr::NodeKind::Leaf: {
        const Imc& m = expr_.leaves_[node.leaf];
        for (const MarkovTransition& t : m.out_markov(tuple[node.leaf])) {
          out.push_back(MMove{t.rate, static_cast<std::uint32_t>(node.leaf), t.to});
        }
        break;
      }
      case CompositionExpr::NodeKind::Parallel:
        collect_markov(node.left, tuple, out);
        collect_markov(node.right, tuple, out);
        break;
      case CompositionExpr::NodeKind::Hide:
        collect_markov(node.child, tuple, out);
        break;
    }
  }

  const CompositionExpr& expr_;
  const ExploreOptions& options_;
};

Imc CompositionExpr::explore(const ExploreOptions& options) const {
  ComposeExplorer explorer(*this, options);
  return explorer.run();
}

Imc parallel_compose(const Imc& a, const std::unordered_set<Action>& sync, const Imc& b,
                     const ExploreOptions& options) {
  auto expr = CompositionExpr::parallel(CompositionExpr::leaf(a),
                                        std::unordered_set<Action>(sync),
                                        CompositionExpr::leaf(b));
  return expr.explore(options);
}

}  // namespace unicon
