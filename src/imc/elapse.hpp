// The elapse operator El(Ph, f, r) (Sec. 3 of the paper, following [15]).
//
// A time constraint turns a phase-type distribution Ph into an IMC with
// synchronization potential: after action r (the trigger) occurs, the Ph
// distributed delay runs; only once it has elapsed is action f (the fire
// action) offered, and after f the constraint returns to its idle state.
//
// The phase-type CTMC is uniformized at rate E, and the idle and done
// states carry Markov self-loops with rate E as well, so that *every* state
// of the constraint has exit rate E: the constraint is a uniform IMC and —
// by Lemmas 1 and 2 — any composition of such constraints with LTSs remains
// uniform by construction.
#pragma once

#include <memory>

#include "ctmc/phase_type.hpp"
#include "imc/imc.hpp"

namespace unicon {

struct ElapseOptions {
  /// Uniformization rate E; 0 selects the maximal phase exit rate.  Must be
  /// >= the maximal phase exit rate otherwise.
  double uniform_rate = 0.0;
  /// When true the delay is already running at system start (the constraint
  /// starts in phase 0 instead of the idle state).  E.g. the failure delay
  /// of a fresh FTWC component runs from time zero, while its repair delay
  /// is triggered only once the repair unit is grabbed.
  bool initially_running = false;
};

/// Builds the time-constraint IMC El(Ph, fire, trigger).
///
/// State layout: 0 = idle (offers @p trigger), 1..n = phases of @p ph,
/// n+1 = done (offers @p fire).  All states have exit rate E.
Imc elapse(const PhaseType& ph, Action fire, Action trigger,
           std::shared_ptr<ActionTable> actions, const ElapseOptions& options = {});

/// Convenience overload interning action names.
Imc elapse(const PhaseType& ph, std::string_view fire, std::string_view trigger,
           std::shared_ptr<ActionTable> actions, const ElapseOptions& options = {});

}  // namespace unicon
