#include "imc/elapse.hpp"

#include <string>

#include "support/errors.hpp"

namespace unicon {

Imc elapse(const PhaseType& ph, Action fire, Action trigger,
           std::shared_ptr<ActionTable> actions, const ElapseOptions& options) {
  if (!actions) throw ModelError("elapse: action table required");
  if (fire == kTau || trigger == kTau) throw ModelError("elapse: fire/trigger must be visible");

  const double max_exit = ph.max_exit_rate();
  const double e = options.uniform_rate == 0.0 ? max_exit : options.uniform_rate;
  if (e + 1e-12 < max_exit) {
    throw UniformityError("elapse: uniformization rate below maximal phase exit rate");
  }

  const std::size_t n = ph.num_phases();
  ImcBuilder b(std::move(actions));
  const StateId idle = b.add_state("idle");
  for (std::size_t i = 0; i < n; ++i) b.add_state("phase" + std::to_string(i));
  const StateId done = b.add_state("done");

  // Idle: wait for the trigger, keep the Poisson clock ticking.
  b.add_interactive(idle, trigger, static_cast<StateId>(1));
  b.add_markov(idle, e, idle);

  // Phases: uniformized copy of the phase-type chain.
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = static_cast<StateId>(1 + i);
    double exit = 0.0;
    for (const SparseEntry& t : ph.phase_rates().row(i)) {
      b.add_markov(s, t.value, static_cast<StateId>(1 + t.col));
      exit += t.value;
    }
    if (ph.absorption_rate(i) > 0.0) {
      b.add_markov(s, ph.absorption_rate(i), done);
      exit += ph.absorption_rate(i);
    }
    const double pad = e - exit;
    if (pad > 1e-12) b.add_markov(s, pad, s);
  }

  // Done: offer the fire action, then return to idle.
  b.add_interactive(done, fire, idle);
  b.add_markov(done, e, done);

  b.set_initial(options.initially_running ? static_cast<StateId>(1) : idle);
  return b.build();
}

Imc elapse(const PhaseType& ph, std::string_view fire, std::string_view trigger,
           std::shared_ptr<ActionTable> actions, const ElapseOptions& options) {
  if (!actions) throw ModelError("elapse: action table required");
  const Action f = actions->intern(fire);
  const Action r = actions->intern(trigger);
  return elapse(ph, f, r, std::move(actions), options);
}

}  // namespace unicon
