// Interactive Markov chains (Def. 3 of the paper).
//
// An IMC superposes a labeled transition system (interactive transitions)
// and a CTMC (Markov transitions).  The library distinguishes the *open*
// view (maximal progress: internal tau actions preempt Markov transitions,
// visible actions are delayable) from the *closed* view (urgency: every
// interactive transition preempts Markov transitions; applied to complete
// models only, Sec. 2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "lts/lts.hpp"
#include "support/symbols.hpp"

namespace unicon {

/// One Markov transition from --rate--> to.  The Markov transition relation
/// is a relation over S x R+ x S; parallel transitions between the same
/// states with different rates may coexist (footnote 1 of the paper) and are
/// kept separate until rates are accumulated by analysis code.
struct MarkovTransition {
  StateId from = 0;
  double rate = 0.0;
  StateId to = 0;

  friend bool operator==(const MarkovTransition&, const MarkovTransition&) = default;
};

/// State partition of Sec. 2: Markov (only Markov out), interactive (only
/// interactive out), hybrid (both), absorbing (neither).
enum class StateKind : std::uint8_t { Markov, Interactive, Hybrid, Absorbing };

/// Which states the uniformity condition constrains.
///  - Open (Def. 4): states without an outgoing tau transition ("stable").
///  - Closed: states without any outgoing interactive transition — under the
///    urgency assumption the rates of all other states are irrelevant.
enum class UniformityView : std::uint8_t { Open, Closed };

class ImcBuilder;

class Imc {
 public:
  Imc() : actions_(std::make_shared<ActionTable>()) {}

  std::size_t num_states() const { return num_states_; }
  std::size_t num_interactive_transitions() const { return itrans_.size(); }
  std::size_t num_markov_transitions() const { return mtrans_.size(); }
  StateId initial() const { return initial_; }

  const ActionTable& actions() const { return *actions_; }
  const std::shared_ptr<ActionTable>& action_table() const { return actions_; }

  std::span<const LtsTransition> out_interactive(StateId s) const {
    return std::span<const LtsTransition>(itrans_.data() + irow_[s], itrans_.data() + irow_[s + 1]);
  }
  std::span<const MarkovTransition> out_markov(StateId s) const {
    return std::span<const MarkovTransition>(mtrans_.data() + mrow_[s], mtrans_.data() + mrow_[s + 1]);
  }
  std::span<const LtsTransition> interactive_transitions() const { return itrans_; }
  std::span<const MarkovTransition> markov_transitions() const { return mtrans_; }

  const std::string& state_name(StateId s) const;

  StateKind kind(StateId s) const;

  /// s --tau--> exists?
  bool has_tau(StateId s) const;
  /// Stable in the sense of Def. 4: no outgoing tau transition.
  bool stable(StateId s) const { return !has_tau(s); }
  bool has_interactive(StateId s) const { return irow_[s] != irow_[s + 1]; }
  bool has_markov(StateId s) const { return mrow_[s] != mrow_[s + 1]; }

  /// Exit rate E_s = r(s, S).
  double exit_rate(StateId s) const;

  /// Cumulative rate from s to s' (sums parallel transitions).
  double rate(StateId s, StateId to) const;

  /// Checks Def. 4 on the *reachable* states (the paper restricts uniformity
  /// to reachable states, Sec. 3): if every constrained state has the same
  /// exit rate, returns it.  When no state is constrained, returns 0.
  std::optional<double> uniform_rate(UniformityView view = UniformityView::Open,
                                     double tol = 1e-9) const;
  bool is_uniform(UniformityView view = UniformityView::Open, double tol = 1e-9) const {
    return uniform_rate(view, tol).has_value();
  }

  /// Pads constrained states (per @p view) with Markov self-loops so all
  /// their exit rates equal @p rate (0 = maximal constrained exit rate).
  /// This is Jensen uniformization lifted to IMCs.
  Imc uniformize(double rate = 0.0, UniformityView view = UniformityView::Closed) const;

  /// Hiding (Sec. 3): all actions in @p hidden become tau; Markov
  /// transitions untouched.  Preserves uniformity (Lemma 1).
  Imc hide(const std::unordered_set<Action>& hidden) const;

  /// Hides every visible action.
  Imc hide_all() const;

  /// Relabels visible actions (process-algebraic renaming).
  Imc relabel(const std::unordered_map<Action, Action>& renaming) const;

  /// Restriction to states reachable from the initial state.
  Imc reachable() const;

  /// Sorted list of visible actions occurring on transitions.
  std::vector<Action> visible_alphabet() const;

  /// Returns a copy with the given state names (size must match).
  Imc rename_states(std::vector<std::string> names) const;

  /// Bytes consumed by the transition storage.
  std::size_t memory_bytes() const;

 private:
  friend class ImcBuilder;
  std::shared_ptr<ActionTable> actions_;
  std::size_t num_states_ = 0;
  StateId initial_ = 0;
  std::vector<LtsTransition> itrans_;
  std::vector<std::uint64_t> irow_;
  std::vector<MarkovTransition> mtrans_;
  std::vector<std::uint64_t> mrow_;
  std::vector<std::string> state_names_;

  void index();
};

class ImcBuilder {
 public:
  explicit ImcBuilder(std::shared_ptr<ActionTable> actions = nullptr);

  StateId add_state(std::string name = "");
  void ensure_states(std::size_t n);
  void set_initial(StateId s) { initial_ = s; }

  void add_interactive(StateId from, Action action, StateId to);
  void add_interactive(StateId from, std::string_view action, StateId to);
  void add_markov(StateId from, double rate, StateId to);

  Action intern(std::string_view name) { return actions_->intern(name); }
  const std::shared_ptr<ActionTable>& action_table() const { return actions_; }
  std::size_t num_states() const { return num_states_; }

  Imc build();

 private:
  std::shared_ptr<ActionTable> actions_;
  std::size_t num_states_ = 0;
  StateId initial_ = 0;
  std::vector<LtsTransition> itrans_;
  std::vector<MarkovTransition> mtrans_;
  std::vector<std::string> state_names_;
};

/// Embeds an LTS as an IMC (empty Markov relation; uniform with E = 0).
Imc imc_from_lts(const Lts& lts);

/// Embeds a CTMC as an IMC (empty interactive relation), sharing @p actions.
Imc imc_from_ctmc(const Ctmc& chain, std::shared_ptr<ActionTable> actions = nullptr);

}  // namespace unicon
