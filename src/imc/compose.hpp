// Parallel composition and hiding of IMCs (Sec. 3 of the paper).
//
// Composition is expressed as an expression tree over component IMCs —
// leaves, CSP/LOTOS-style parallel nodes |[A]| and hide nodes — which is
// explored *on the fly*: only product states reachable from the composite
// initial state are ever materialized.  This replaces the paper's
// CADP/SVL tool chain and avoids its intermediate state-space blowup
// (Sec. 5 "Technicalities") while producing the same reachable IMC.
//
// The SOS rules implemented are exactly those of Sec. 3: interactive
// transitions interleave unless their action is in the synchronization set
// (tau never synchronizes), Markov transitions always interleave, hiding
// renames to tau and leaves Markov transitions untouched.  Lemmas 1 and 2
// (uniformity preservation) are validated by the test suite on top of this
// implementation.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_set>
#include <vector>

#include "imc/imc.hpp"
#include "support/run_guard.hpp"

namespace unicon {

class Telemetry;

struct ExploreOptions {
  /// Apply the closed-view urgency assumption during generation: states
  /// with an enabled interactive transition contribute no Markov
  /// transitions.  Only sound for complete (closed) models.
  bool urgent = false;
  /// Record composite state names "(s0,s1,...)" (costly for large spaces).
  bool record_names = false;
  /// Abort with ModelError when more product states than this are reached.
  std::size_t max_states = static_cast<std::size_t>(-1);
  /// When non-null, receives the leaf-state tuple of every composite state,
  /// indexed by composite StateId (leaves in left-to-right expression
  /// order).  Cheaper and more robust than parsing record_names output;
  /// used by the modeling-language frontend to transfer per-leaf atomic
  /// propositions onto the product.
  std::vector<std::vector<StateId>>* record_tuples = nullptr;
  /// Optional execution control, checked once per explored frontier state.
  /// State-space generation has no partial-result story, so a budget stop
  /// raises BudgetError.
  RunGuard* guard = nullptr;
  /// Optional observability: explore() opens a "compose" span recording
  /// product states/transitions, dedup hits and the peak frontier size.
  Telemetry* telemetry = nullptr;
};

/// An immutable composition expression.  All leaves must share one
/// ActionTable instance so that action ids agree.
class CompositionExpr {
 public:
  /// A single component.
  static CompositionExpr leaf(Imc imc);

  /// left |[sync]| right.  @p sync must not contain tau.
  static CompositionExpr parallel(CompositionExpr left, std::unordered_set<Action> sync,
                                  CompositionExpr right);

  /// Interleaving without synchronization: left |[{}]| right.
  static CompositionExpr interleave(CompositionExpr left, CompositionExpr right);

  /// hide hidden in (inner).
  static CompositionExpr hide(CompositionExpr inner, std::unordered_set<Action> hidden);

  /// Hides every visible action of the inner expression.
  static CompositionExpr hide_all(CompositionExpr inner);

  /// Explores the reachable composite state space and returns it as an IMC.
  Imc explore(const ExploreOptions& options = {}) const;

  /// Number of component leaves.
  std::size_t num_leaves() const { return leaves_.size(); }

  const std::shared_ptr<ActionTable>& action_table() const { return actions_; }

 private:
  CompositionExpr() = default;

  enum class NodeKind : std::uint8_t { Leaf, Parallel, Hide };
  struct Node {
    NodeKind kind = NodeKind::Leaf;
    std::size_t leaf = 0;               // Leaf
    std::size_t left = 0, right = 0;    // Parallel
    std::size_t child = 0;              // Hide
    std::unordered_set<Action> sync;    // Parallel
    std::unordered_set<Action> hidden;  // Hide
    bool hide_everything = false;       // Hide
  };

  std::shared_ptr<ActionTable> actions_;
  std::vector<Imc> leaves_;
  std::vector<Node> nodes_;
  std::size_t root_ = 0;

  static CompositionExpr combine(CompositionExpr&& a, CompositionExpr&& b, Node&& parent);
  friend class ComposeExplorer;
};

/// Convenience: a |[sync]| b, fully explored.
Imc parallel_compose(const Imc& a, const std::unordered_set<Action>& sync, const Imc& b,
                     const ExploreOptions& options = {});

}  // namespace unicon
