#include "core/analysis.hpp"

#include "support/errors.hpp"

namespace unicon {

UimcAnalysisResult analyze_timed_reachability(const Imc& m, const BitVector& goal,
                                              double t, const UimcAnalysisOptions& options) {
  if (options.check_uniformity && !m.is_uniform(UniformityView::Closed, 1e-6)) {
    throw UniformityError(
        "analyze_timed_reachability: model is not uniform (closed view); "
        "build it uniformly by construction or uniformize it first");
  }

  UimcAnalysisResult result;
  result.transformed =
      transform_to_ctmdp(m, &goal, options.reachability.guard, options.reachability.telemetry);
  result.transform = result.transformed.stats;

  const BitVector& ctmdp_goal =
      options.reachability.objective == Objective::Maximize ? result.transformed.goal
                                                            : result.transformed.goal_universal;
  result.reachability =
      timed_reachability(result.transformed.ctmdp, ctmdp_goal, t, options.reachability);
  result.value = result.reachability.values[result.transformed.ctmdp.initial()];
  return result;
}

UimcBatchAnalysisResult analyze_timed_reachability_batch(const Imc& m, const BitVector& goal,
                                                         const std::vector<double>& times,
                                                         const UimcAnalysisOptions& options) {
  if (options.check_uniformity && !m.is_uniform(UniformityView::Closed, 1e-6)) {
    throw UniformityError(
        "analyze_timed_reachability_batch: model is not uniform (closed view); "
        "build it uniformly by construction or uniformize it first");
  }

  UimcBatchAnalysisResult result;
  result.transformed =
      transform_to_ctmdp(m, &goal, options.reachability.guard, options.reachability.telemetry);
  result.transform = result.transformed.stats;

  const BitVector& ctmdp_goal =
      options.reachability.objective == Objective::Maximize ? result.transformed.goal
                                                            : result.transformed.goal_universal;
  result.reachability =
      timed_reachability_batch(result.transformed.ctmdp, ctmdp_goal, times, options.reachability);
  result.values.reserve(times.size());
  for (const TimedReachabilityResult& r : result.reachability) {
    result.values.push_back(r.values[result.transformed.ctmdp.initial()]);
  }
  return result;
}

}  // namespace unicon
