// The uIMC -> uCTMDP transformation (Sec. 4.1 of the paper).
//
// A closed IMC is normalized into a *strictly alternating* IMC in three
// steps, each preserving the scheduler-indexed path probability measures
// (Theorem 1):
//
//  (1) make_alternating       — hybrid states lose their Markov transitions
//                               (urgency: in a closed system every
//                               interactive transition preempts delays);
//  (2) make_markov_alternating — Markov->Markov sequences are broken by a
//                               fresh interactive state (s,s') reached with
//                               the original rate and left by tau;
//  (3) strictly alternating    — maximal sequences of interactive
//                               transitions are compressed into single
//                               transitions labeled by *words* over
//                               Act+_{\tau} u {tau}; interactive states
//                               without Markov predecessors disappear.
//
// The result is interpreted as a CTMDP whose states are the remaining
// interactive states and whose transitions correspond one-to-one to the
// (source, word, Markov state) edges; the rate function of a transition is
// the Markov state's outgoing rate vector.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmdp/ctmdp.hpp"
#include "imc/imc.hpp"
#include "support/bit_vector.hpp"
#include "support/run_guard.hpp"

namespace unicon {

class Telemetry;

/// Step (1): cut the Markov transitions of hybrid states.  Closed view
/// only — do not compose the result further.
Imc make_alternating(const Imc& m);

/// Step (2): ensure every Markov transition ends in an interactive state by
/// splitting Markov->Markov edges with fresh tau states.  Requires an
/// alternating IMC.
Imc make_markov_alternating(const Imc& m);

/// Statistics of the strictly alternating representation — the columns of
/// the paper's Table 1.
struct TransformStats {
  std::size_t interactive_states = 0;      // = CTMDP states
  std::size_t markov_states = 0;           // = distinct rate functions
  std::size_t interactive_transitions = 0; // = CTMDP transitions (word edges)
  std::size_t markov_transitions = 0;      // rate entries of the Markov states
  std::size_t memory_bytes = 0;            // strictly alternating storage
  /// Word edges suppressed because another word already connected the same
  /// (source, Markov state) pair — such duplicates carry identical rate
  /// functions and are indistinguishable to time-abstract schedulers.
  std::size_t words_deduplicated = 0;
  double seconds = 0.0;                    // wall time of the transformation
};

struct TransformResult {
  Ctmdp ctmdp;
  TransformStats stats;
  /// Per CTMDP state: the original IMC state it stems from.  Fresh states
  /// introduced by step (2) map to the Markov state they lead into (their
  /// sojourn time is spent there); a fresh initial state maps to the
  /// original initial state.
  std::vector<StateId> origin_of;
  /// Transferred goal sets (empty when no goal was supplied):
  /// goal[x] — some zero-time interactive path from x hits the original
  /// goal set (correct for sup/maximal reachability);
  /// goal_universal[x] — every zero-time resolution from x hits it
  /// (correct for inf/minimal reachability).
  BitVector goal;
  BitVector goal_universal;
};

/// Full transformation pipeline: steps (1)-(3) plus CTMDP interpretation.
/// @p m must be a closed IMC (it is restricted to its reachable part
/// internally).  Throws ZenoError when a cycle of interactive transitions
/// is reachable, and ModelError on zero-time deadlocks (absorbing
/// interactive states), which the paper's setting excludes.
///
/// If @p goal is non-null it must have one entry per state of @p m; the
/// transferred goal masks are returned in the result.
///
/// @p guard (optional) is checked once per closure entry; the
/// transformation has no partial-result story, so a budget stop raises
/// BudgetError.
///
/// @p telemetry (optional) records a "transform" span with the
/// TransformStats quantities plus the hybrid Markov transitions cut in
/// step (1) and the fresh tau states added in step (2), and a
/// "transform.word_length" histogram of the emitted closure words.
TransformResult transform_to_ctmdp(const Imc& m, const BitVector* goal = nullptr,
                                   RunGuard* guard = nullptr, Telemetry* telemetry = nullptr);

}  // namespace unicon
