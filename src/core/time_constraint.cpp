#include "core/time_constraint.hpp"

#include "support/errors.hpp"

namespace unicon {

CompositionExpr time_constrained_expr(const Lts& lts,
                                      const std::vector<TimeConstraint>& constraints) {
  if (constraints.empty()) {
    return CompositionExpr::leaf(imc_from_lts(lts));
  }
  const auto& actions = lts.action_table();

  // Fold the constraint IMCs together.  Two constraints that share an
  // action (e.g. one's fire is the other's trigger) must synchronize on it,
  // so each fold syncs on the overlap of the accumulated alphabet with the
  // next constraint's {fire, trigger}.
  std::unordered_set<Action> sync;  // accumulated timer alphabet
  CompositionExpr timers = [&] {
    ElapseOptions opts;
    opts.uniform_rate = constraints[0].uniform_rate;
    opts.initially_running = constraints[0].initially_running;
    sync.insert(actions->intern(constraints[0].fire));
    sync.insert(actions->intern(constraints[0].trigger));
    return CompositionExpr::leaf(
        elapse(constraints[0].distribution, constraints[0].fire, constraints[0].trigger, actions, opts));
  }();
  for (std::size_t i = 1; i < constraints.size(); ++i) {
    ElapseOptions opts;
    opts.uniform_rate = constraints[i].uniform_rate;
    opts.initially_running = constraints[i].initially_running;
    const Action fire = actions->intern(constraints[i].fire);
    const Action trigger = actions->intern(constraints[i].trigger);
    std::unordered_set<Action> overlap;
    if (sync.count(fire) != 0) overlap.insert(fire);
    if (sync.count(trigger) != 0) overlap.insert(trigger);
    sync.insert(fire);
    sync.insert(trigger);
    timers = CompositionExpr::parallel(
        std::move(timers), std::move(overlap),
        CompositionExpr::leaf(elapse(constraints[i].distribution, constraints[i].fire,
                                     constraints[i].trigger, actions, opts)));
  }
  return CompositionExpr::parallel(CompositionExpr::leaf(imc_from_lts(lts)), std::move(sync),
                                   std::move(timers));
}

Imc apply_time_constraints(const Lts& lts, const std::vector<TimeConstraint>& constraints,
                           const ExploreOptions& options) {
  return time_constrained_expr(lts, constraints).explore(options);
}

}  // namespace unicon
