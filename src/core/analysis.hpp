// End-to-end timed reachability analysis of closed uniform IMCs: the glue
// between the compositional construction (Sec. 3), the uIMC -> uCTMDP
// transformation (Sec. 4.1) and Algorithm 1 (Sec. 4.2).
#pragma once

#include <vector>

#include "core/transform.hpp"
#include "ctmdp/reachability.hpp"
#include "imc/imc.hpp"

namespace unicon {

struct UimcAnalysisOptions {
  TimedReachabilityOptions reachability;
  /// Require the input to satisfy Def. 4 before transforming (recommended:
  /// Algorithm 1 is only correct on uniform models).  Checked in the closed
  /// view since the input is a complete system.
  bool check_uniformity = true;
};

struct UimcAnalysisResult {
  /// Probability at the initial state.
  double value = 0.0;
  /// Per-CTMDP-state values plus solver statistics.
  TimedReachabilityResult reachability;
  /// Transformation statistics (Table 1 columns).
  TransformStats transform;
  /// The transformed model and state mapping, for further queries.
  TransformResult transformed;
};

/// Computes sup_D Pr_D(s0, reach goal within t) — or inf with
/// options.reachability.objective == Minimize — for the closed uniform IMC
/// @p m.  @p goal flags states of @p m; it is transferred through the
/// transformation automatically (existential transfer for sup, universal
/// for inf).
UimcAnalysisResult analyze_timed_reachability(const Imc& m, const BitVector& goal,
                                              double t, const UimcAnalysisOptions& options = {});

struct UimcBatchAnalysisResult {
  /// Probability at the initial state per requested time bound (input order).
  std::vector<double> values;
  /// Full per-horizon solver results (timed_reachability_batch contract:
  /// each bit-identical to its independent single-t solve).
  std::vector<TimedReachabilityResult> reachability;
  TransformStats transform;
  TransformResult transformed;
};

/// Multi-horizon variant of analyze_timed_reachability: the pipeline up to
/// the CTMDP runs once, then one fused batch solve answers every bound in
/// @p times (see ctmdp/reachability.hpp for the batch guarantees).
UimcBatchAnalysisResult analyze_timed_reachability_batch(const Imc& m, const BitVector& goal,
                                                         const std::vector<double>& times,
                                                         const UimcAnalysisOptions& options = {});

}  // namespace unicon
