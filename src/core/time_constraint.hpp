// Time constraints: incorporating stochastic delays into LTSs by
// composition (Sec. 3 and Fig. 3 of the paper).
//
// A TimeConstraint says: between an occurrence of `trigger` and the next
// occurrence of `fire` there must be a Ph-distributed delay.  It is realized
// as the uniform IMC El(Ph, fire, trigger); apply_time_constraints fully
// interleaves all constraints of a component and synchronizes the result
// with the component's LTS on every fire/trigger action — exactly the
// construction of the workstation model in Fig. 3.
#pragma once

#include <string>
#include <vector>

#include "ctmc/phase_type.hpp"
#include "imc/compose.hpp"
#include "imc/elapse.hpp"
#include "imc/imc.hpp"
#include "lts/lts.hpp"

namespace unicon {

struct TimeConstraint {
  PhaseType distribution;
  std::string fire;     // delayed action
  std::string trigger;  // action (re)starting the delay
  bool initially_running = false;
  double uniform_rate = 0.0;  // 0 = maximal phase exit rate

  TimeConstraint(PhaseType ph, std::string fire_action, std::string trigger_action,
                 bool running = false, double rate = 0.0)
      : distribution(std::move(ph)),
        fire(std::move(fire_action)),
        trigger(std::move(trigger_action)),
        initially_running(running),
        uniform_rate(rate) {}
};

/// Builds lts |[sync]| (El_1 ||| El_2 ||| ... ||| El_k) where sync is the
/// set of all fire/trigger actions of the constraints.  The result is
/// uniform by construction (Lemmas 1 and 2) with rate sum_i E_i.
Imc apply_time_constraints(const Lts& lts, const std::vector<TimeConstraint>& constraints,
                           const ExploreOptions& options = {});

/// Same, but returns the unexplored composition expression so it can be
/// embedded into a larger composition.
CompositionExpr time_constrained_expr(const Lts& lts,
                                      const std::vector<TimeConstraint>& constraints);

}  // namespace unicon
