#include "core/transform.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "support/errors.hpp"
#include "support/telemetry.hpp"

namespace unicon {

namespace {

std::uint64_t pair_key(StateId a, StateId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct MarkovAlternating {
  Imc imc;
  /// For fresh pair states (ids >= num_original): the Markov state s' the
  /// pair (s, s') leads into.
  std::vector<StateId> pair_target;
  std::size_t num_original = 0;
};

MarkovAlternating markov_alternating_impl(const Imc& m) {
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (m.kind(s) == StateKind::Hybrid) {
      throw ModelError("make_markov_alternating: input has hybrid states; run step (1) first");
    }
  }

  MarkovAlternating result;
  result.num_original = m.num_states();

  ImcBuilder b(m.action_table());
  for (StateId s = 0; s < m.num_states(); ++s) b.add_state(m.state_name(s));
  b.set_initial(m.initial());
  for (const LtsTransition& t : m.interactive_transitions()) {
    b.add_interactive(t.from, t.action, t.to);
  }

  std::unordered_map<std::uint64_t, StateId> pair_states;
  for (const MarkovTransition& t : m.markov_transitions()) {
    const bool target_is_markov = m.kind(t.to) == StateKind::Markov;
    if (!target_is_markov) {
      b.add_markov(t.from, t.rate, t.to);
      continue;
    }
    // Break the Markov->Markov sequence with a fresh interactive state.
    const std::uint64_t key = pair_key(t.from, t.to);
    auto it = pair_states.find(key);
    StateId fresh;
    if (it == pair_states.end()) {
      fresh = b.add_state();
      pair_states.emplace(key, fresh);
      result.pair_target.push_back(t.to);
      b.add_interactive(fresh, kTau, t.to);
    } else {
      fresh = it->second;
    }
    b.add_markov(t.from, t.rate, fresh);
  }

  result.imc = b.build();
  return result;
}

}  // namespace

Imc make_alternating(const Imc& m) {
  ImcBuilder b(m.action_table());
  for (StateId s = 0; s < m.num_states(); ++s) b.add_state(m.state_name(s));
  b.set_initial(m.initial());
  for (const LtsTransition& t : m.interactive_transitions()) {
    b.add_interactive(t.from, t.action, t.to);
  }
  for (const MarkovTransition& t : m.markov_transitions()) {
    // Urgency: any interactive transition preempts the delays of a hybrid
    // state, so its Markov transitions are cut.
    if (!m.has_interactive(t.from)) b.add_markov(t.from, t.rate, t.to);
  }
  return b.build();
}

Imc make_markov_alternating(const Imc& m) { return markov_alternating_impl(m).imc; }

TransformResult transform_to_ctmdp(const Imc& m, const BitVector* goal,
                                   RunGuard* guard, Telemetry* telemetry) {
  if (goal != nullptr && goal->size() != m.num_states()) {
    throw ModelError("transform_to_ctmdp: goal vector size mismatch");
  }
  Stopwatch timer;
  std::optional<Telemetry::Span> span;
  Histogram* word_lengths = nullptr;
  if (telemetry != nullptr) {
    span.emplace(telemetry->span("transform"));
    word_lengths = &telemetry->histogram("transform.word_length");
  }

  std::uint64_t markov_cut = 0;
  if (telemetry != nullptr) {
    for (const MarkovTransition& t : m.markov_transitions()) {
      if (m.has_interactive(t.from)) ++markov_cut;
    }
  }

  const Imc alternating = make_alternating(m);
  const MarkovAlternating ma = markov_alternating_impl(alternating);
  const Imc& m2 = ma.imc;
  const std::size_t n2 = m2.num_states();

  auto original_goal = [&](StateId s) -> bool {
    if (goal == nullptr) return false;
    if (s < ma.num_original) return (*goal)[s];
    return false;  // fresh pair states carry no atomic propositions
  };

  // --- Zero-time closure bookkeeping over interactive states of m2 -------
  // For every interactive state v (memoized):
  //   exists_hit(v): some zero-time resolution from v hits the goal set.
  //   all_hit(v):    every zero-time resolution from v hits it.
  // A back edge during this DFS is a cycle of interactive transitions,
  // i.e. Zeno behaviour; an interactive successor without any transitions
  // is a zero-time deadlock.  Both are rejected (Sec. 4.1).
  enum class Color : std::uint8_t { White, Grey, Black };
  std::vector<Color> color(n2, Color::White);
  BitVector exists_hit(n2, false), all_hit(n2, false);

  auto successor_hits = [&](StateId w, bool& ex, bool& all) {
    // Contribution of successor w (any kind) to its predecessor's flags.
    if (m2.has_interactive(w)) {
      ex = exists_hit[w];
      all = all_hit[w];
    } else if (m2.has_markov(w)) {
      ex = all = original_goal(w);
    } else {
      throw ModelError("transform_to_ctmdp: zero-time deadlock (absorbing interactive path)");
    }
  };

  struct Frame {
    StateId v;
    std::size_t edge = 0;
  };
  auto closure_dfs = [&](StateId root) {
    if (color[root] != Color::White) return;
    std::vector<Frame> stack{Frame{root}};
    color[root] = Color::Grey;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto ts = m2.out_interactive(f.v);
      if (f.edge < ts.size()) {
        const StateId w = ts[f.edge++].to;
        if (!m2.has_interactive(w)) continue;  // Markov/absorbing handled at fold time
        if (color[w] == Color::Grey) {
          throw ZenoError("transform_to_ctmdp: cycle of interactive transitions (Zeno behaviour)");
        }
        if (color[w] == Color::White) {
          color[w] = Color::Grey;
          stack.push_back(Frame{w});
        }
        continue;
      }
      // Fold successors.
      bool ex = original_goal(f.v);
      bool all = ts.empty() ? original_goal(f.v) : true;
      for (const LtsTransition& t : ts) {
        bool sex = false, sall = false;
        successor_hits(t.to, sex, sall);
        ex = ex || sex;
        all = all && sall;
      }
      all = all || original_goal(f.v);
      exists_hit[f.v] = ex;
      all_hit[f.v] = all;
      color[f.v] = Color::Black;
      stack.pop_back();
    }
  };

  // --- Step (3): word closure and CTMDP interpretation -------------------
  CtmdpBuilder builder(m2.action_table(), nullptr);
  const WordId tau_word = builder.word_table()->intern_single(kTau);

  TransformResult result;
  TransformStats& stats = result.stats;

  std::unordered_map<StateId, StateId> ctmdp_id;  // m2 interactive state -> ctmdp state
  std::deque<StateId> worklist;
  auto intern_entry = [&](StateId v) -> StateId {
    auto it = ctmdp_id.find(v);
    if (it != ctmdp_id.end()) return it->second;
    const StateId id = builder.add_state();
    ctmdp_id.emplace(v, id);
    worklist.push_back(v);
    // Sojourn-wise origin: fresh pair states live in the Markov state they
    // lead into.
    result.origin_of.push_back(v < ma.num_original ? v : ma.pair_target[v - ma.num_original]);
    closure_dfs(v);  // also detects Zeno cycles and zero-time deadlocks
    if (goal != nullptr) {
      result.goal.push_back(exists_hit[v]);
      result.goal_universal.push_back(all_hit[v]);
    }
    return id;
  };

  // Entry point: the initial state, prefixed by a fresh tau word when it is
  // not interactive.
  const StateId init2 = m2.initial();
  StateId ctmdp_initial;
  bool initial_is_markov = false;
  if (m2.has_interactive(init2)) {
    ctmdp_initial = intern_entry(init2);
  } else if (m2.has_markov(init2)) {
    // Fresh interactive pre-initial state with a single tau-word transition
    // whose rate function is the initial Markov state's.
    initial_is_markov = true;
    ctmdp_initial = builder.add_state();
    result.origin_of.push_back(init2);
    if (goal != nullptr) {
      result.goal.push_back(original_goal(init2));
      result.goal_universal.push_back(original_goal(init2));
    }
  } else {
    throw ModelError("transform_to_ctmdp: initial state is absorbing");
  }
  builder.set_initial(ctmdp_initial);

  std::unordered_set<StateId> markov_seen;  // distinct Markov states used
  auto emit_rates = [&](StateId markov_state) {
    for (const MarkovTransition& t : m2.out_markov(markov_state)) {
      builder.add_rate(intern_entry(t.to), t.rate);
    }
    if (markov_seen.insert(markov_state).second) {
      ++stats.markov_states;
      stats.markov_transitions += m2.out_markov(markov_state).size();
    }
  };

  if (initial_is_markov) {
    builder.begin_transition(ctmdp_initial, tau_word);
    emit_rates(init2);
    ++stats.interactive_transitions;
  }

  // Per-entry BFS over the zero-time interactive closure.
  struct QueueItem {
    StateId state;
    std::vector<Action> word;  // visible actions so far
  };
  std::unordered_set<StateId> visited;
  std::unordered_set<StateId> targets_done;  // Markov states already linked from this entry
  std::deque<QueueItem> queue;

  while (!worklist.empty()) {
    if (guard != nullptr) guard->check("transform");
    const StateId entry = worklist.front();
    worklist.pop_front();
    const StateId from = ctmdp_id.at(entry);

    visited.clear();
    targets_done.clear();
    queue.clear();
    visited.insert(entry);
    queue.push_back(QueueItem{entry, {}});

    while (!queue.empty()) {
      QueueItem item = std::move(queue.front());
      queue.pop_front();
      for (const LtsTransition& t : m2.out_interactive(item.state)) {
        std::vector<Action> word = item.word;
        if (t.action != kTau) word.push_back(t.action);
        if (m2.has_interactive(t.to)) {
          if (visited.insert(t.to).second) {
            queue.push_back(QueueItem{t.to, std::move(word)});
          }
          continue;
        }
        if (!m2.has_markov(t.to)) {
          throw ModelError("transform_to_ctmdp: zero-time deadlock (absorbing interactive path)");
        }
        // Maximal interactive sequence ends: emit one CTMDP transition per
        // (entry, Markov target) pair.
        if (!targets_done.insert(t.to).second) {
          ++stats.words_deduplicated;
          continue;
        }
        const WordId label = word.empty() ? tau_word : builder.intern_word(word);
        if (word_lengths != nullptr) word_lengths->observe(word.size());
        builder.begin_transition(from, label);
        emit_rates(t.to);
        ++stats.interactive_transitions;
      }
    }
  }

  result.ctmdp = builder.build();
  stats.interactive_states = result.ctmdp.num_states();
  // Strictly alternating storage estimate: interactive word edges
  // (source, word, target) and Markov rate edges (source, rate, target).
  stats.memory_bytes = stats.interactive_transitions * (3 * sizeof(std::uint32_t)) +
                       stats.markov_transitions * (2 * sizeof(std::uint32_t) + sizeof(double)) +
                       (stats.interactive_states + stats.markov_states) * sizeof(std::uint64_t);
  stats.seconds = timer.seconds();
  if (span) {
    span->metric("input_states", m.num_states());
    span->metric("interactive_states", stats.interactive_states);
    span->metric("markov_states", stats.markov_states);
    span->metric("interactive_transitions", stats.interactive_transitions);
    span->metric("markov_transitions", stats.markov_transitions);
    span->metric("words_deduplicated", stats.words_deduplicated);
    span->metric("markov_transitions_cut", markov_cut);
    span->metric("pair_states_added", ma.pair_target.size());
    span->metric("memory_bytes", stats.memory_bytes);
  }
  return result;
}

}  // namespace unicon
