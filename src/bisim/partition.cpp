#include "bisim/partition.hpp"

namespace unicon {

Partition Partition::trivial(std::size_t num_states) {
  Partition p;
  p.block_of.assign(num_states, 0);
  p.num_blocks = num_states == 0 ? 0 : 1;
  return p;
}

void Partition::canonicalize() {
  std::vector<std::uint32_t> remap(num_blocks, static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  for (std::uint32_t& b : block_of) {
    if (remap[b] == static_cast<std::uint32_t>(-1)) remap[b] = next++;
    b = remap[b];
  }
  num_blocks = next;
}

}  // namespace unicon
