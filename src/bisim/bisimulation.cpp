#include "bisim/bisimulation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "support/errors.hpp"
#include "support/bit_vector.hpp"
#include "support/telemetry.hpp"

namespace unicon {

namespace {

/// Rates are quantized before entering signatures so that block rate sums
/// that differ only by floating-point summation order compare equal.
std::int64_t quantize(double rate) { return std::llround(rate * 1e9); }

struct VecU64Hash {
  std::size_t operator()(const std::vector<std::uint64_t>& v) const {
    std::size_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t x : v) {
      h ^= x;
      h *= 0x100000001b3ull;
      h ^= x >> 32;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

constexpr std::uint64_t kInteractiveTag = 1ull << 62;
constexpr std::uint64_t kRateTag = 1ull << 63;

/// Appends the lumped Markov rate vector of @p s under @p blocks.
void append_rate_signature(const Imc& m, StateId s, const std::vector<std::uint32_t>& blocks,
                           std::vector<std::uint64_t>& sig) {
  std::unordered_map<std::uint32_t, double> lumped;
  for (const MarkovTransition& t : m.out_markov(s)) lumped[blocks[t.to]] += t.rate;
  for (const auto& [blk, rate] : lumped) {
    sig.push_back(kRateTag | blk);
    sig.push_back(static_cast<std::uint64_t>(quantize(rate)));
  }
}

/// Signature items are (tag|payload, extra) u64 pairs; sorts and dedupes
/// the pairs stored from index @p from onward.
struct SigItem {
  std::uint64_t a, b;
  friend bool operator<(const SigItem& x, const SigItem& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  }
  friend bool operator==(const SigItem&, const SigItem&) = default;
};
static_assert(sizeof(SigItem) == 2 * sizeof(std::uint64_t));

void sort_dedupe(std::vector<std::uint64_t>& sig, std::size_t from) {
  auto* items = reinterpret_cast<SigItem*>(sig.data() + from);
  const std::size_t n = (sig.size() - from) / 2;
  std::sort(items, items + n);
  const auto* end = std::unique(items, items + n);
  sig.resize(from + 2 * static_cast<std::size_t>(end - items));
}

/// Tau-SCC decomposition (iterative Tarjan restricted to tau edges).
/// SCCs are emitted successors-first (reverse topological order of the
/// condensation), which is exactly the order the inert closure needs.
struct TauSccResult {
  std::vector<std::uint32_t> scc_of;
  std::uint32_t num_sccs = 0;
  std::vector<std::vector<StateId>> members;  // per SCC, in emission order
};

/// When @p blocks is non-null only *inert* tau edges (same block at both
/// ends) are considered; otherwise all tau edges.
TauSccResult tau_sccs(const Imc& m, const std::vector<std::uint32_t>* blocks = nullptr) {
  const std::size_t n = m.num_states();

  // Tau successor lists (transitions are sorted with tau first).
  std::vector<std::vector<StateId>> tau_succ(n);
  for (StateId s = 0; s < n; ++s) {
    for (const LtsTransition& t : m.out_interactive(s)) {
      if (t.action != kTau) break;
      if (blocks != nullptr && (*blocks)[t.to] != (*blocks)[t.from]) continue;
      tau_succ[s].push_back(t.to);
    }
  }

  TauSccResult r;
  r.scc_of.assign(n, static_cast<std::uint32_t>(-1));

  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> index(n, kUnvisited), low(n, 0);
  BitVector on_stack(n, false);
  std::vector<StateId> scc_stack;
  std::uint32_t next_index = 0;

  struct Frame {
    StateId s;
    std::size_t edge = 0;
  };
  std::vector<Frame> call;

  for (StateId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call.push_back(Frame{root});
    index[root] = low[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!call.empty()) {
      Frame& f = call.back();
      const StateId s = f.s;
      if (f.edge < tau_succ[s].size()) {
        const StateId t = tau_succ[s][f.edge++];
        if (index[t] == kUnvisited) {
          index[t] = low[t] = next_index++;
          scc_stack.push_back(t);
          on_stack[t] = true;
          call.push_back(Frame{t});
        } else if (on_stack[t]) {
          low[s] = std::min(low[s], index[t]);
        }
        continue;
      }
      // All edges of s explored: maybe close an SCC, then return.
      if (low[s] == index[s]) {
        const auto scc = r.num_sccs++;
        r.members.emplace_back();
        for (;;) {
          const StateId w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          r.scc_of[w] = scc;
          r.members.back().push_back(w);
          if (w == s) break;
        }
      }
      call.pop_back();
      if (!call.empty()) low[call.back().s] = std::min(low[call.back().s], low[s]);
    }
  }
  return r;
}

}  // namespace

namespace {

/// Initial partition: trivial, or the label classes when labels are given.
Partition seed_partition(std::size_t n, const std::vector<std::uint32_t>* labels) {
  if (labels == nullptr) return Partition::trivial(n);
  if (labels->size() != n) throw ModelError("bisimulation: label vector size mismatch");
  Partition p;
  p.block_of = *labels;
  p.num_blocks = 0;
  for (std::uint32_t b : p.block_of) p.num_blocks = std::max(p.num_blocks, b + 1);
  p.canonicalize();
  return p;
}

}  // namespace

Partition strong_bisimulation(const Imc& m, const std::vector<std::uint32_t>* labels,
                              RunGuard* guard, Telemetry* telemetry) {
  const std::size_t n = m.num_states();
  Partition p = seed_partition(n, labels);
  std::optional<Telemetry::Span> span;
  if (telemetry != nullptr) span.emplace(telemetry->span("bisim"));
  if (n == 0) return p;

  std::uint64_t rounds = 0;
  std::uint64_t splitters = 0;
  for (;;) {
    if (guard != nullptr) guard->check("strong_bisimulation");
    ++rounds;
    std::unordered_map<std::vector<std::uint64_t>, std::uint32_t, VecU64Hash> sig_ids;
    std::vector<std::uint32_t> next(n);
    std::vector<std::uint64_t> sig;
    for (StateId s = 0; s < n; ++s) {
      sig.clear();
      sig.push_back(p.block_of[s]);  // embedding the old block keeps refinement monotone
      const std::size_t from = sig.size();
      for (const LtsTransition& t : m.out_interactive(s)) {
        sig.push_back(kInteractiveTag | t.action);
        sig.push_back(p.block_of[t.to]);
      }
      // Rates of tau-unstable states are preempted by maximal progress and
      // do not enter the signature.
      if (m.stable(s)) append_rate_signature(m, s, p.block_of, sig);
      sort_dedupe(sig, from);
      auto [it, inserted] = sig_ids.emplace(sig, static_cast<std::uint32_t>(sig_ids.size()));
      next[s] = it->second;
    }
    const auto num_blocks = static_cast<std::uint32_t>(sig_ids.size());
    const bool fixpoint = num_blocks == p.num_blocks;
    if (num_blocks > p.num_blocks) splitters += num_blocks - p.num_blocks;
    p.block_of = std::move(next);
    p.num_blocks = num_blocks;
    if (fixpoint) break;
  }
  p.canonicalize();
  if (span) {
    span->metric("states", n);
    span->metric("rounds", rounds);
    span->metric("splitters", splitters);
    span->metric("final_blocks", p.num_blocks);
  }
  return p;
}

Partition branching_bisimulation(const Imc& m, const std::vector<std::uint32_t>* labels,
                                 RunGuard* guard, Telemetry* telemetry) {
  const std::size_t n = m.num_states();
  std::optional<Telemetry::Span> span;
  if (telemetry != nullptr) span.emplace(telemetry->span("bisim"));
  if (n == 0) return Partition::trivial(0);

  std::vector<std::vector<std::uint64_t>> state_sigs(n);

  std::uint64_t rounds = 0;
  std::uint64_t splitters = 0;
  Partition p = seed_partition(n, labels);
  for (;;) {
    if (guard != nullptr) guard->check("branching_bisimulation");
    ++rounds;
    // The inert subgraph (tau edges within one block) changes as the
    // partition refines; its SCC condensation is recomputed every round.
    // Tarjan emits SCCs successors-first, which is the order the closure
    // needs: every inert tau successor in another SCC is finished first.
    const TauSccResult sccs = tau_sccs(m, &p.block_of);

    // Per-state signatures with inert closure, SCC by SCC.  An inert tau
    // step to a different inert SCC absorbs the successor's finished
    // signature; members of a cyclic inert SCC reach each other inertly
    // and are unified immediately so that later SCCs absorb the complete
    // closure.
    std::vector<std::uint64_t> sig;
    for (const auto& members : sccs.members) {
      for (StateId s : members) {
        sig.clear();
        for (const LtsTransition& t : m.out_interactive(s)) {
          const bool inert = t.action == kTau && p.block_of[t.to] == p.block_of[s];
          if (inert) {
            if (sccs.scc_of[t.to] != sccs.scc_of[s]) {
              const auto& inner = state_sigs[t.to];
              sig.insert(sig.end(), inner.begin(), inner.end());
            }
          } else {
            sig.push_back(kInteractiveTag | t.action);
            sig.push_back(p.block_of[t.to]);
          }
        }
        if (m.stable(s)) append_rate_signature(m, s, p.block_of, sig);
        sort_dedupe(sig, 0);
        state_sigs[s] = sig;
      }
      if (members.size() > 1) {
        std::vector<std::uint64_t> merged;
        for (StateId s : members) {
          merged.insert(merged.end(), state_sigs[s].begin(), state_sigs[s].end());
        }
        sort_dedupe(merged, 0);
        for (StateId s : members) state_sigs[s] = merged;
      }
    }

    // Pass 3: split by (old block, signature).
    std::unordered_map<std::vector<std::uint64_t>, std::uint32_t, VecU64Hash> sig_ids;
    std::vector<std::uint32_t> next(n);
    for (StateId s = 0; s < n; ++s) {
      sig.assign(1, p.block_of[s]);
      sig.insert(sig.end(), state_sigs[s].begin(), state_sigs[s].end());
      auto [it, inserted] = sig_ids.emplace(sig, static_cast<std::uint32_t>(sig_ids.size()));
      next[s] = it->second;
    }
    const auto num_blocks = static_cast<std::uint32_t>(sig_ids.size());
    const bool fixpoint = num_blocks == p.num_blocks;
    if (num_blocks > p.num_blocks) splitters += num_blocks - p.num_blocks;
    p.block_of = std::move(next);
    p.num_blocks = num_blocks;
    if (fixpoint) break;
  }
  p.canonicalize();
  if (span) {
    span->metric("states", n);
    span->metric("rounds", rounds);
    span->metric("splitters", splitters);
    span->metric("final_blocks", p.num_blocks);
  }
  return p;
}

Imc quotient(const Imc& m, const Partition& partition, QuotientStyle style) {
  if (partition.num_states() != m.num_states()) {
    throw ModelError("quotient: partition size mismatch");
  }
  const std::uint32_t k = partition.num_blocks;
  ImcBuilder b(m.action_table());
  std::vector<std::string> names(k);
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (names[partition.block_of[s]].empty() && !m.state_name(s).empty()) {
      names[partition.block_of[s]] = m.state_name(s);
    }
  }
  for (std::uint32_t blk = 0; blk < k; ++blk) b.add_state(std::move(names[blk]));
  b.set_initial(partition.block_of[m.initial()]);

  // Interactive transitions: union over members, dropping inert tau steps
  // for branching quotients (they are stuttering); strong quotients keep
  // them as tau self-loops so instability is preserved.
  for (const LtsTransition& t : m.interactive_transitions()) {
    const std::uint32_t from = partition.block_of[t.from];
    const std::uint32_t to = partition.block_of[t.to];
    if (t.action == kTau && from == to && style == QuotientStyle::Branching) continue;
    b.add_interactive(from, t.action, to);
  }

  // Markov transitions: lumped vector of the first stable member of each
  // block; blocks without stable members carry none (maximal progress).
  BitVector done(k, false);
  for (StateId s = 0; s < m.num_states(); ++s) {
    const std::uint32_t blk = partition.block_of[s];
    if (done[blk] || !m.stable(s)) continue;
    done[blk] = true;
    std::unordered_map<std::uint32_t, double> lumped;
    for (const MarkovTransition& t : m.out_markov(s)) lumped[partition.block_of[t.to]] += t.rate;
    for (const auto& [to, rate] : lumped) b.add_markov(blk, rate, to);
  }

  return b.build();
}

Imc minimize_branching(const Imc& m) {
  return quotient(m, branching_bisimulation(m), QuotientStyle::Branching);
}

Imc minimize_strong(const Imc& m) {
  return quotient(m, strong_bisimulation(m), QuotientStyle::Strong);
}

}  // namespace unicon
