// State-space partitions used by the bisimulation minimizers.
#pragma once

#include <cstdint>
#include <vector>

#include "support/symbols.hpp"

namespace unicon {

/// A partition of a state space into blocks 0..num_blocks-1.
struct Partition {
  std::vector<std::uint32_t> block_of;  // state -> block
  std::uint32_t num_blocks = 0;

  std::size_t num_states() const { return block_of.size(); }

  /// The trivial partition with a single block.
  static Partition trivial(std::size_t num_states);

  /// True iff @p a and @p b lie in the same block.
  bool same(StateId a, StateId b) const { return block_of[a] == block_of[b]; }

  /// Renumbers blocks so they appear in order of their first state; the
  /// result is canonical and comparable.
  void canonicalize();

  friend bool operator==(const Partition&, const Partition&) = default;
};

}  // namespace unicon
