// Bisimulation minimization for IMCs.
//
// Implements the equivalences used by the paper's compositional
// minimization strategy (Sec. 3):
//
//  * strong bisimulation — interactive moves matched exactly, Markov rates
//    lumped per class [21]; rates of tau-unstable states are ignored
//    (maximal progress).
//  * stochastic branching bisimulation (Def. 6) — interactive moves matched
//    up to inert tau steps (branching condition [30]); every state related
//    to a stable state can inertly reach a stable state with the identical
//    lumped rate vector per class.
//
// Both are computed by signature refinement (Blom–Orzan style): starting
// from the trivial partition, states are repeatedly split by a canonical
// signature until a fixpoint is reached.  Inert tau cycles are collapsed
// upfront (the closed models of the paper are Zeno-free; for open models
// this realizes the usual divergence-insensitive interpretation).
//
// Lemma 3 / Corollary 1 of the paper — quotienting preserves uniformity —
// is exercised by the test suite on top of these functions.
#pragma once

#include "bisim/partition.hpp"
#include "imc/imc.hpp"
#include "support/run_guard.hpp"

namespace unicon {

class Telemetry;

/// Coarsest strong bisimulation partition of @p m.  When @p labels is
/// non-null (one label per state) the partition refines the label classes —
/// use this to preserve atomic propositions (e.g. goal states) through
/// minimization.
///
/// @p guard (optional, also on branching_bisimulation) is checked once per
/// refinement round; partition refinement has no partial-result story, so
/// a budget stop raises BudgetError.
///
/// @p telemetry (optional, also on branching_bisimulation) records a
/// "bisim" span with refinement rounds, splitter count (blocks created by
/// splits across all rounds) and the final block count.
Partition strong_bisimulation(const Imc& m, const std::vector<std::uint32_t>* labels = nullptr,
                              RunGuard* guard = nullptr, Telemetry* telemetry = nullptr);

/// Coarsest stochastic branching bisimulation partition of @p m, optionally
/// refining initial label classes (see strong_bisimulation).
Partition branching_bisimulation(const Imc& m,
                                 const std::vector<std::uint32_t>* labels = nullptr,
                                 RunGuard* guard = nullptr, Telemetry* telemetry = nullptr);

/// How inert tau transitions (tau steps inside one block) are treated when
/// quotienting: Branching drops them (they are stuttering steps), Strong
/// keeps them as tau self-loops of the block.
enum class QuotientStyle : std::uint8_t { Branching, Strong };

/// Quotient IMC of @p m under @p partition.  Interactive transitions are the
/// (non-inert, for branching partitions) transitions of the block members;
/// Markov transitions are the lumped rate vector of a stable member (blocks
/// without stable members have none — their rates are preempted by maximal
/// progress).  Quotient state ids equal block ids, so per-block data (e.g.
/// transferred goal masks) indexes the quotient directly; when @p m is
/// reachable, so is the quotient.
Imc quotient(const Imc& m, const Partition& partition,
             QuotientStyle style = QuotientStyle::Branching);

/// quotient(m, branching_bisimulation(m)) — the StoBraBi(M) of the paper.
Imc minimize_branching(const Imc& m);

/// quotient(m, strong_bisimulation(m)).
Imc minimize_strong(const Imc& m);

}  // namespace unicon
