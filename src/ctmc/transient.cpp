#include "ctmc/transient.hpp"

#include <algorithm>
#include <cmath>

#include "support/errors.hpp"
#include "support/fox_glynn.hpp"
#include "support/numerics.hpp"

namespace unicon {

namespace {

/// Uniformized jump matrix: P = R / E with the residual mass on the
/// diagonal.  Diagonal entries are kept implicitly as (1 - rowsum/E).
struct JumpMatrix {
  const CsrMatrix* rates;
  double e;
  std::vector<double> self_residual;  // per state: 1 - exit/E (excl. explicit self-loops)

  explicit JumpMatrix(const Ctmc& chain, double rate) : rates(&chain.rate_matrix()), e(rate) {
    const std::size_t n = chain.num_states();
    self_residual.resize(n);
    for (StateId s = 0; s < n; ++s) {
      self_residual[s] = 1.0 - chain.exit_rate(s) / e;
      if (self_residual[s] < 0.0) self_residual[s] = 0.0;
    }
  }

  // y = x P (forward / distribution step)
  void step_forward(const std::vector<double>& x, std::vector<double>& y) const {
    const std::size_t n = self_residual.size();
    for (std::size_t s = 0; s < n; ++s) y[s] = x[s] * self_residual[s];
    for (std::size_t s = 0; s < n; ++s) {
      const double xs = x[s];
      if (xs == 0.0) continue;
      for (const SparseEntry& t : rates->row(s)) y[t.col] += xs * (t.value / e);
    }
  }

  // y = P x (backward / value step)
  void step_backward(const std::vector<double>& x, std::vector<double>& y) const {
    const std::size_t n = self_residual.size();
    for (std::size_t s = 0; s < n; ++s) {
      double acc = self_residual[s] * x[s];
      for (const SparseEntry& t : rates->row(s)) acc += (t.value / e) * x[t.col];
      y[s] = acc;
    }
  }
};

double pick_rate(const Ctmc& chain, const TransientOptions& options) {
  const double max_rate = chain.max_exit_rate();
  double e = options.uniform_rate == 0.0 ? max_rate : options.uniform_rate;
  if (e + 1e-12 < max_rate) {
    throw UniformityError("transient: uniformization rate below maximal exit rate");
  }
  if (e == 0.0) e = 1.0;  // chain without transitions; any rate works
  return e;
}

}  // namespace

TransientResult transient_distribution(const Ctmc& chain, double t,
                                       const TransientOptions& options) {
  if (t < 0.0) throw ModelError("transient: negative time bound");
  const std::size_t n = chain.num_states();
  const double e = pick_rate(chain, options);
  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const JumpMatrix p(chain, e);

  std::vector<double> cur(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> acc(n, 0.0);
  cur[chain.initial()] = 1.0;

  std::uint64_t executed = 0;
  for (std::uint64_t i = 0;; ++i) {
    const double w = psi.psi(i);
    if (w > 0.0) {
      for (std::size_t s = 0; s < n; ++s) acc[s] += w * cur[s];
    }
    if (i >= psi.right()) break;
    p.step_forward(cur, next);
    ++executed;
    if (options.early_termination &&
        max_abs_diff(cur, next) <= options.early_termination_delta) {
      // The distribution has converged; the remaining window mass sits on
      // the fixed point.
      const double tail = psi.tail_mass(i + 1);
      for (std::size_t s = 0; s < n; ++s) acc[s] += tail * next[s];
      cur.swap(next);
      break;
    }
    cur.swap(next);
  }

  // Normalize by the realized window mass so that the result is a
  // (sub-stochastic up to epsilon) distribution.
  const double mass = psi.total_mass();
  if (mass > 0.0) {
    for (double& v : acc) v = clamp01(v / mass);
  }
  return TransientResult{std::move(acc), psi.right(), executed, e};
}

TransientResult timed_reachability(const Ctmc& chain, const std::vector<bool>& goal,
                                   double t, const TransientOptions& options) {
  if (t < 0.0) throw ModelError("timed_reachability: negative time bound");
  if (goal.size() != chain.num_states()) {
    throw ModelError("timed_reachability: goal vector size mismatch");
  }
  const Ctmc absorbing = chain.make_absorbing(goal);
  const std::size_t n = absorbing.num_states();
  const double e = pick_rate(absorbing, options);
  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const JumpMatrix p(absorbing, e);

  // v_i(s) = probability to sit in B after i jumps of the absorbing chain.
  std::vector<double> cur(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> acc(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) cur[s] = goal[s] ? 1.0 : 0.0;

  std::uint64_t executed = 0;
  for (std::uint64_t i = 0;; ++i) {
    const double w = psi.psi(i);
    if (w > 0.0) {
      for (std::size_t s = 0; s < n; ++s) acc[s] += w * cur[s];
    }
    if (i >= psi.right()) break;
    p.step_backward(cur, next);
    ++executed;
    if (options.early_termination &&
        max_abs_diff(cur, next) <= options.early_termination_delta) {
      const double tail = psi.tail_mass(i + 1);
      for (std::size_t s = 0; s < n; ++s) acc[s] += tail * next[s];
      cur.swap(next);
      break;
    }
    cur.swap(next);
  }

  for (std::size_t s = 0; s < n; ++s) acc[s] = goal[s] ? 1.0 : clamp01(acc[s]);
  return TransientResult{std::move(acc), psi.right(), executed, e};
}

TransientResult interval_reachability(const Ctmc& chain, const std::vector<bool>& goal,
                                      double t1, double t2, const TransientOptions& options) {
  if (t1 < 0.0 || t2 < t1) throw ModelError("interval_reachability: need 0 <= t1 <= t2");
  if (goal.size() != chain.num_states()) {
    throw ModelError("interval_reachability: goal vector size mismatch");
  }
  // Phase A: values w(s) = Pr(s, <= t2 - t1, B), B absorbing.
  TransientResult phase_a = timed_reachability(chain, goal, t2 - t1, options);
  if (t1 == 0.0) return phase_a;

  // Phase B: propagate the terminal vector w backward for t1 over the
  // unmodified chain (B is not absorbing before t1).
  const std::size_t n = chain.num_states();
  const double e = pick_rate(chain, options);
  const PoissonWindow psi = PoissonWindow::compute(e * t1, options.epsilon);
  const JumpMatrix p(chain, e);

  std::vector<double> cur = std::move(phase_a.probabilities);
  std::vector<double> next(n, 0.0);
  std::vector<double> acc(n, 0.0);

  std::uint64_t executed = phase_a.iterations_executed;
  for (std::uint64_t i = 0;; ++i) {
    const double w = psi.psi(i);
    if (w > 0.0) {
      for (std::size_t s = 0; s < n; ++s) acc[s] += w * cur[s];
    }
    if (i >= psi.right()) break;
    p.step_backward(cur, next);
    ++executed;
    if (options.early_termination &&
        max_abs_diff(cur, next) <= options.early_termination_delta) {
      const double tail = psi.tail_mass(i + 1);
      for (std::size_t s = 0; s < n; ++s) acc[s] += tail * next[s];
      break;
    }
    cur.swap(next);
  }
  for (double& v : acc) v = clamp01(v);
  return TransientResult{std::move(acc), phase_a.iterations + psi.right(), executed, e};
}

}  // namespace unicon
