#include "ctmc/transient.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <optional>
#include <string>

#include "support/backend.hpp"
#include "support/errors.hpp"
#include "support/fox_glynn.hpp"
#include "support/numerics.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace unicon {

namespace {

/// Bit-exact double comparison for the locking criterion (see the matching
/// helper in ctmdp/reachability.cpp: +0.0 == -0.0 would break the no-copy
/// twin-buffer invariant).
bool same_bits(double a, double b) {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

/// Flat kernel of the uniformized jump matrix P = R / E with the residual
/// mass kept implicitly on the diagonal.  The branching probabilities are
/// divided out once and stored twice: row-major (outgoing edges, for the
/// backward/value gather y = P x) and column-major (incoming edges ordered
/// by source, for the forward/distribution gather y = x P).  Storing the
/// transpose turns the forward step's scatter into a race-free gather, so
/// both directions parallelize row-wise; the source-ordered incoming rows
/// keep the accumulation order of the historical serial scatter, so results
/// are bit-identical to it.
struct JumpKernel {
  std::vector<double> self_residual;  // per state: 1 - exit/E (excl. explicit self-loops)
  std::vector<std::uint64_t> out_first;  // per state: first outgoing prob/col index
  std::vector<double> out_prob;
  std::vector<std::uint32_t> out_col;  // target states
  std::vector<std::uint64_t> in_first;  // per state: first incoming prob/col index
  std::vector<double> in_prob;
  std::vector<std::uint32_t> in_col;  // source states

  JumpKernel(const Ctmc& chain, double rate) {
    const CsrMatrix& rates = chain.rate_matrix();
    const std::size_t n = chain.num_states();
    const std::size_t m = rates.entries();
    self_residual.resize(n);
    for (StateId s = 0; s < n; ++s) {
      self_residual[s] = 1.0 - chain.exit_rate(s) / rate;
      if (self_residual[s] < 0.0) self_residual[s] = 0.0;
    }

    out_first.resize(n + 1);
    out_prob.reserve(m);
    out_col.reserve(m);
    std::vector<std::uint64_t> in_count(n + 1, 0);
    out_first[0] = 0;
    for (StateId s = 0; s < n; ++s) {
      for (const SparseEntry& t : rates.row(s)) {
        const double p = t.value / rate;
        if (!std::isfinite(p) || p < 0.0) {
          throw NumericError("JumpKernel: non-finite branching probability from state " +
                             std::to_string(s));
        }
        out_prob.push_back(p);
        out_col.push_back(t.col);
        ++in_count[t.col + 1];
      }
      out_first[s + 1] = out_prob.size();
    }

    in_first.assign(n + 1, 0);
    for (StateId s = 0; s < n; ++s) in_first[s + 1] = in_first[s] + in_count[s + 1];
    in_prob.resize(m);
    in_col.resize(m);
    std::vector<std::uint64_t> cursor(in_first.begin(), in_first.end() - 1);
    for (StateId s = 0; s < n; ++s) {
      for (std::uint64_t j = out_first[s]; j < out_first[s + 1]; ++j) {
        const std::uint64_t slot = cursor[out_col[j]]++;
        in_prob[slot] = out_prob[j];
        in_col[slot] = s;
      }
    }
  }

  /// States per should_abort_sweep() probe; the block structure leaves the
  /// per-state accumulation order (and hence bit-identical results) alone.
  /// Sized to keep the probe under ~2% of the sweep cost (see the matching
  /// constant in ctmdp/reachability.cpp).
  static constexpr std::size_t kGuardBlock = 4096;

  /// The incoming (forward) rows as a backend GatherView.
  GatherView forward_view() const {
    GatherView v;
    v.num_rows = self_residual.size();
    v.diag = self_residual.data();
    v.row_first = in_first.data();
    v.prob = in_prob.data();
    v.col = in_col.data();
    return v;
  }

  /// The outgoing (backward) rows as a backend GatherView.
  GatherView backward_view() const {
    GatherView v;
    v.num_rows = self_residual.size();
    v.diag = self_residual.data();
    v.row_first = out_first.data();
    v.prob = out_prob.data();
    v.col = out_col.data();
    return v;
  }

  // y = x P (forward / distribution step): gather over incoming edges.
  // @p rows: optional per-worker telemetry row counters (nullptr = off),
  // batched into one relaxed add per worker per sweep.  @p ops: simd kernel
  // table, or nullptr for the historical sequential accumulation.
  void step_forward(const std::vector<double>& x, std::vector<double>& y, WorkerPool& pool,
                    RunGuard* guard, std::atomic<bool>& aborted,
                    Counter* const* rows = nullptr, const KernelOps* ops = nullptr) const {
    const GatherView view = forward_view();
    pool.run(self_residual.size(), [&](unsigned worker, std::size_t begin, std::size_t end) {
      std::uint64_t swept = 0;
      for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
        if (guard != nullptr && guard->should_abort_sweep()) {
          aborted.store(true, std::memory_order_relaxed);
          break;
        }
        const std::size_t blk_end = std::min(end, blk + kGuardBlock);
        swept += blk_end - blk;
        if (ops != nullptr) {
          ops->gather_rows(view, x.data(), y.data(), blk, blk_end);
          continue;
        }
        for (std::size_t s = blk; s < blk_end; ++s) {
          double acc = x[s] * self_residual[s];
          for (std::uint64_t j = in_first[s]; j < in_first[s + 1]; ++j) {
            acc += x[in_col[j]] * in_prob[j];
          }
          y[s] = acc;
        }
      }
      if (rows != nullptr) rows[worker]->add(swept);
    });
  }

  /// True when every outgoing column of @p s lies in @p locked or is s
  /// itself (the closure half of the locking criterion).
  bool row_closed(const BitVector& locked, std::size_t s) const {
    for (std::uint64_t j = out_first[s]; j < out_first[s + 1]; ++j) {
      const std::uint32_t c = out_col[j];
      if (c != s && !locked[c]) return false;
    }
    return true;
  }

  // y = P x (backward / value step): gather over outgoing edges.  With a
  // @p locked set, frozen rows are skipped without any write (both
  // double-buffers already hold their bits — the no-copy invariant); the
  // block is split around frozen runs, which cannot change any produced
  // bit since rows are independent.  @p cand (per-worker staging, applied
  // by the caller after the barrier) collects rows meeting the locking
  // criterion: value bit-identical to the previous iterate with every
  // successor frozen (or the row itself).  @p upd counts rows actually
  // relaxed into 64-byte-strided per-worker slots.
  void step_backward(const std::vector<double>& x, std::vector<double>& y, WorkerPool& pool,
                     RunGuard* guard, std::atomic<bool>& aborted,
                     Counter* const* rows = nullptr, const KernelOps* ops = nullptr,
                     const BitVector* locked = nullptr,
                     std::vector<std::vector<StateId>>* cand = nullptr,
                     std::uint64_t* upd = nullptr) const {
    const GatherView view = backward_view();
    pool.run(self_residual.size(), [&](unsigned worker, std::size_t begin, std::size_t end) {
      std::uint64_t swept = 0;
      std::vector<StateId>* const my_cand = cand != nullptr ? &(*cand)[worker] : nullptr;
      for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
        if (guard != nullptr && guard->should_abort_sweep()) {
          aborted.store(true, std::memory_order_relaxed);
          break;
        }
        const std::size_t blk_end = std::min(end, blk + kGuardBlock);
        if (locked == nullptr) {
          swept += blk_end - blk;
          if (ops != nullptr) {
            ops->gather_rows(view, x.data(), y.data(), blk, blk_end);
            continue;
          }
          for (std::size_t s = blk; s < blk_end; ++s) {
            double acc = self_residual[s] * x[s];
            for (std::uint64_t j = out_first[s]; j < out_first[s + 1]; ++j) {
              acc += out_prob[j] * x[out_col[j]];
            }
            y[s] = acc;
          }
          continue;
        }
        std::size_t r = blk;
        while (r < blk_end) {
          if ((*locked)[r]) {
            ++r;
            continue;
          }
          std::size_t run_end = r + 1;
          while (run_end < blk_end && !(*locked)[run_end]) ++run_end;
          if (ops != nullptr) {
            ops->gather_rows(view, x.data(), y.data(), r, run_end);
          } else {
            for (std::size_t s = r; s < run_end; ++s) {
              double acc = self_residual[s] * x[s];
              for (std::uint64_t j = out_first[s]; j < out_first[s + 1]; ++j) {
                acc += out_prob[j] * x[out_col[j]];
              }
              y[s] = acc;
            }
          }
          swept += run_end - r;
          if (my_cand != nullptr) {
            for (std::size_t s = r; s < run_end; ++s) {
              if (same_bits(y[s], x[s]) && row_closed(*locked, s)) {
                my_cand->push_back(static_cast<StateId>(s));
              }
            }
          }
          r = run_end;
        }
      }
      if (upd != nullptr) upd[worker * std::size_t{8}] += swept;
      if (rows != nullptr) rows[worker]->add(swept);
    });
  }

  /// The ops table for a resolved backend: nullptr selects the serial
  /// open-coded loops above.
  static const KernelOps* ops_for(Backend resolved) {
    return resolved == Backend::Serial ? nullptr : &kernel_ops(resolved);
  }
};

/// Pre-resolved per-worker row counters (see the matching helper in
/// ctmdp/reachability.cpp).  Empty (nullptr data) when telemetry is off.
std::vector<Counter*> worker_row_counters(Telemetry* telemetry, unsigned workers) {
  std::vector<Counter*> out;
  if (telemetry == nullptr) return out;
  out.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    out.push_back(&telemetry->counter("ctmc.rows.worker" + std::to_string(w)));
  }
  return out;
}

void require_finite(const std::vector<double>& values, const char* where) {
  for (std::size_t s = 0; s < values.size(); ++s) {
    if (!std::isfinite(values[s])) {
      throw NumericError(std::string(where) + ": non-finite probability at state " +
                         std::to_string(s) + " (NaN/Inf reached the iterate)");
    }
  }
}

double pick_rate(const Ctmc& chain, const TransientOptions& options) {
  const double max_rate = chain.max_exit_rate();
  double e = options.uniform_rate == 0.0 ? max_rate : options.uniform_rate;
  if (e + 1e-12 < max_rate) {
    throw UniformityError("transient: uniformization rate below maximal exit rate");
  }
  if (e == 0.0) e = 1.0;  // chain without transitions; any rate works
  return e;
}

}  // namespace

TransientResult transient_distribution(const Ctmc& chain, double t,
                                       const TransientOptions& options) {
  if (t < 0.0) throw ModelError("transient: negative time bound");
  const std::size_t n = chain.num_states();
  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) span.emplace(options.telemetry->span("transient"));
  const double e = pick_rate(chain, options);
  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const JumpKernel p(chain, e);
  const KernelOps* const ops = JumpKernel::ops_for(resolve_backend(options.backend));
  WorkerPool pool = make_worker_pool(options.threads, n);
  const std::vector<Counter*> row_counters = worker_row_counters(options.telemetry, pool.size());
  Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

  std::vector<double> cur(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> acc(n, 0.0);
  cur[chain.initial()] = 1.0;

  RunGuard* const guard = options.guard;
  std::atomic<bool> sweep_aborted{false};
  RunStatus status = RunStatus::Converged;
  // Normalization by the window mass costs at most epsilon/(1 - epsilon)
  // <= 2 epsilon extra, hence the doubled slop in the converged bound.
  double residual = 2.0 * options.epsilon;

  std::uint64_t executed = 0;
  std::uint64_t early_step = 0;
  for (std::uint64_t i = 0;; ++i) {
    if (guard != nullptr && guard->poll() != RunStatus::Converged) {
      // Mass of steps [i, right] has not been accumulated yet.
      status = guard->status();
      residual = psi.tail_mass(i) + 2.0 * options.epsilon;
      break;
    }
    const double w = psi.psi(i);
    if (w > 0.0) {
      for (std::size_t s = 0; s < n; ++s) acc[s] += w * cur[s];
    }
    if (i >= psi.right()) break;
    p.step_forward(cur, next, pool, guard, sweep_aborted, rows_out, ops);
    if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
      status = guard->status();
      residual = psi.tail_mass(i + 1) + 2.0 * options.epsilon;
      break;
    }
    ++executed;
    if (guard != nullptr) {
      guard->checkpoint("transient_distribution", executed, psi.right(),
                        psi.tail_mass(i + 1) + 2.0 * options.epsilon,
                        std::span<double>(next.data(), next.size()));
    }
    if (options.early_termination &&
        max_abs_diff(cur, next) <= options.early_termination_delta) {
      // The distribution has converged; the remaining window mass sits on
      // the fixed point.
      const double tail = psi.tail_mass(i + 1);
      for (std::size_t s = 0; s < n; ++s) acc[s] += tail * next[s];
      cur.swap(next);
      residual += options.early_termination_delta;
      early_step = executed;
      break;
    }
    cur.swap(next);
  }

  require_finite(acc, "transient_distribution");
  // Normalize by the realized window mass so that the result is a
  // (sub-stochastic up to epsilon) distribution.
  const double mass = psi.total_mass();
  if (mass > 0.0) {
    for (double& v : acc) v = clamp01(v / mass);
  }
  TransientResult result{std::move(acc), psi.right(), executed, e};
  result.status = status;
  result.residual_bound = residual;
  if (span) {
    span->metric("states", n);
    span->metric("uniform_rate", e);
    span->metric("lambda", e * t);
    span->metric("poisson_left", psi.left());
    span->metric("poisson_right", psi.right());
    span->metric("poisson_width", psi.right() - psi.left() + 1);
    span->metric("iterations_planned", psi.right());
    span->metric("iterations_executed", executed);
    span->metric("early_termination_step", early_step);
    span->metric("threads", pool.size());
    span->metric("residual_bound", residual);
  }
  return result;
}

TransientResult timed_reachability(const Ctmc& chain, const BitVector& goal,
                                   double t, const TransientOptions& options) {
  if (t < 0.0) throw ModelError("timed_reachability: negative time bound");
  if (goal.size() != chain.num_states()) {
    throw ModelError("timed_reachability: goal vector size mismatch");
  }
  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) span.emplace(options.telemetry->span("ctmc_reachability"));
  const Ctmc absorbing = chain.make_absorbing(goal);
  const std::size_t n = absorbing.num_states();
  const double e = pick_rate(absorbing, options);
  // Truncation policy (DESIGN.md Sec. 14): an engaged plan computes the
  // window at epsilon/2 and may stop the iteration early once the folded
  // tail error provably fits under the other epsilon/2.
  const TruncationPlan plan = plan_truncation(options.truncation, e * t, options.epsilon);
  const PoissonWindow& psi = plan.window;
  const JumpKernel p(absorbing, e);
  const KernelOps* const ops = JumpKernel::ops_for(resolve_backend(options.backend));
  WorkerPool pool = make_worker_pool(options.threads, n);
  const std::vector<Counter*> row_counters = worker_row_counters(options.telemetry, pool.size());
  Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

  // v_i(s) = probability to sit in B after i jumps of the absorbing chain.
  std::vector<double> cur(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> acc(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) cur[s] = goal[s] ? 1.0 : 0.0;

  // Convergence locking: the backward operator is time-invariant (the
  // Poisson weight only scales the accumulation, never the sweep), so a
  // row that reproduced its bits with every successor frozen is an exact
  // fixpoint of its own relaxation from the very first step.  Values are
  // bit-identical with locking on or off; only the work per sweep changes.
  const bool locking = options.locking;
  BitVector locked;
  std::size_t locked_count = 0;
  std::vector<std::vector<StateId>> cand;
  if (locking) {
    locked.assign(n, false);
    cand.resize(pool.size());
  }
  std::vector<std::uint64_t> upd(pool.size() * std::size_t{8}, 0);

  // Lyapunov certificate: u_i(s) = Pr_s(X_i not in B) bounds the remaining
  // per-state distance v_inf - v_i, so once tail_mass(i+1) * sup u_{i+1}
  // drops under stop_epsilon the whole unaccumulated window can be folded
  // onto v_{i+1} at a provably bounded cost.
  LyapunovSeries series(plan.stop_epsilon);
  bool cert_active = plan.engaged();
  std::uint64_t k_lyapunov = 0;
  std::vector<double> u;
  std::vector<double> u_next;
  if (cert_active) {
    u.assign(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) u[s] = goal[s] ? 0.0 : 1.0;
    u_next.assign(n, 0.0);
  }

  RunGuard* const guard = options.guard;
  std::atomic<bool> sweep_aborted{false};
  RunStatus status = RunStatus::Converged;
  double residual = plan.window_epsilon;

  std::uint64_t executed = 0;
  std::uint64_t early_step = 0;
  for (std::uint64_t i = 0;; ++i) {
    if (guard != nullptr && guard->poll() != RunStatus::Converged) {
      status = guard->status();
      residual = psi.tail_mass(i) + plan.window_epsilon;
      break;
    }
    const double w = psi.psi(i);
    if (w > 0.0) {
      for (std::size_t s = 0; s < n; ++s) acc[s] += w * cur[s];
    }
    if (i >= psi.right()) break;
    if (locking && locked_count == n && guard == nullptr && !options.early_termination &&
        !cert_active) {
      // Every row is frozen: P cur == cur bitwise, so the sweep and swap
      // are provable no-ops.  Only the Poisson accumulation above still
      // runs.  Gated off under a guard (the checkpoint span must see a
      // fresh buffer) and under early termination (its delta probe reads
      // both buffers) to keep those paths exactly on the historical code.
      ++executed;
      continue;
    }
    p.step_backward(cur, next, pool, guard, sweep_aborted, rows_out, ops,
                    locking ? &locked : nullptr, locking ? &cand : nullptr, upd.data());
    if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
      status = guard->status();
      residual = psi.tail_mass(i + 1) + plan.window_epsilon;
      break;
    }
    ++executed;
    if (locking) {
      // Candidates were judged against the pre-sweep locked set on every
      // worker; applying after the barrier keeps the set deterministic for
      // every thread count.
      for (std::vector<StateId>& c : cand) {
        for (const StateId s : c) locked.set(s);
        locked_count += c.size();
        c.clear();
      }
    }
    if (guard != nullptr) {
      guard->checkpoint("ctmc_timed_reachability", executed, psi.right(),
                        psi.tail_mass(i + 1) + plan.window_epsilon,
                        std::span<double>(next.data(), next.size()));
      if (locked_count != 0 && guard->wants_checkpoint(executed)) {
        // The checkpoint span is externally writable, so the twin-buffer
        // invariant of every locked row is void — drop all locks.
        locked.assign(n, false);
        locked_count = 0;
      }
    }
    if (options.early_termination &&
        max_abs_diff(cur, next) <= options.early_termination_delta) {
      const double tail = psi.tail_mass(i + 1);
      for (std::size_t s = 0; s < n; ++s) acc[s] += tail * next[s];
      cur.swap(next);
      residual += options.early_termination_delta;
      early_step = executed;
      break;
    }
    if (cert_active) {
      // Advance the survival iterate u_{i+1} = P u_i; its sup bounds the
      // per-state distance v_inf - v_{i+1} (absorption is monotone).
      p.step_backward(u, u_next, pool, nullptr, sweep_aborted);
      u.swap(u_next);
      double ub = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        if (!(u[s] <= ub)) ub = u[s];  // NaN-latching sup
      }
      series.record(ub);
      if (series.should_disengage(series.size())) {
        // Not contracting within the probe budget — stop paying for the
        // second sweep; the run continues on the pure window schedule.
        cert_active = false;
        u = std::vector<double>();
        u_next = std::vector<double>();
      } else {
        const double tail = psi.tail_mass(i + 1);
        if (tail * ub <= plan.stop_epsilon) {
          // sum_{j>i} psi(j) (v_j - v_{i+1}) <= tail * sup u_{i+1}: fold
          // the whole remaining window onto v_{i+1} and stop.
          for (std::size_t s = 0; s < n; ++s) acc[s] += tail * next[s];
          cur.swap(next);
          residual += tail * ub;
          k_lyapunov = executed;
          break;
        }
      }
    }
    cur.swap(next);
  }

  require_finite(acc, "timed_reachability");
  for (std::size_t s = 0; s < n; ++s) acc[s] = goal[s] ? 1.0 : clamp01(acc[s]);
  TransientResult result{std::move(acc), psi.right(), executed, e};
  result.status = status;
  result.residual_bound = residual;
  result.truncation = plan.resolved;
  result.k_lyapunov = k_lyapunov;
  result.locked_final = locked_count;
  for (std::size_t wkr = 0; wkr < pool.size(); ++wkr) {
    result.state_updates += upd[wkr * std::size_t{8}];
  }
  if (span) {
    span->metric("states", n);
    span->metric("uniform_rate", e);
    span->metric("lambda", e * t);
    span->metric("poisson_left", psi.left());
    span->metric("poisson_right", psi.right());
    span->metric("poisson_width", psi.right() - psi.left() + 1);
    span->metric("iterations_planned", psi.right());
    span->metric("iterations_executed", executed);
    span->metric("early_termination_step", early_step);
    span->metric("threads", pool.size());
    span->metric("residual_bound", residual);
    span->metric("truncation.k_fox_glynn", plan.fox_glynn_right);
    span->metric("truncation.k_effective", executed);
    span->metric("truncation.k_lyapunov", k_lyapunov);
    span->metric("truncation.locked_final", result.locked_final);
    span->metric("truncation.state_updates", result.state_updates);
  }
  return result;
}

std::vector<TransientResult> timed_reachability_batch(const Ctmc& chain, const BitVector& goal,
                                                      const std::vector<double>& times,
                                                      const TransientOptions& options) {
  for (const double t : times) {
    if (!(t >= 0.0)) throw ModelError("timed_reachability_batch: negative time bound");
  }
  if (goal.size() != chain.num_states()) {
    throw ModelError("timed_reachability_batch: goal vector size mismatch");
  }
  const std::size_t num_horizons = times.size();
  std::vector<TransientResult> results(num_horizons);
  if (num_horizons == 0) return results;

  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) {
    span.emplace(options.telemetry->span("ctmc_reachability_batch"));
  }
  const Ctmc absorbing = chain.make_absorbing(goal);
  const std::size_t n = absorbing.num_states();
  const double e = pick_rate(absorbing, options);
  const JumpKernel p(absorbing, e);
  const KernelOps* const ops = JumpKernel::ops_for(resolve_backend(options.backend));
  WorkerPool pool = make_worker_pool(options.threads, n);
  const std::vector<Counter*> row_counters = worker_row_counters(options.telemetry, pool.size());
  Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

  // The step vectors v_i (probability to sit in B after i jumps of the
  // absorbing uniformized chain) do not depend on the time bound — only
  // the Poisson weights do.  One shared sweep sequence therefore serves
  // every horizon exactly: per horizon and step these are the very
  // multiply-adds of its single-t run, so batch answers are bit-identical
  // to single runs while the matrix work is paid once (DESIGN.md Sec. 11).
  struct Horizon {
    PoissonWindow psi;
    bool done = false;
    std::uint64_t executed = 0;
    std::uint64_t early_step = 0;
    double residual = 0.0;
    RunStatus status = RunStatus::Converged;
    std::vector<double> acc;
    // Per-horizon truncation plan (the shared iterate serves every window).
    double window_epsilon = 0.0;
    std::uint64_t fox_glynn_right = 0;
    bool engaged = false;
    Truncation resolved = Truncation::FoxGlynn;
    std::uint64_t k_lyapunov = 0;
    std::uint64_t state_updates = 0;
    std::size_t locked_final = 0;
  };
  std::vector<Horizon> horizons(num_horizons);
  std::uint64_t right_max = 0;
  bool any_engaged = false;
  for (std::size_t j = 0; j < num_horizons; ++j) {
    Horizon& h = horizons[j];
    const TruncationPlan hplan = plan_truncation(options.truncation, e * times[j], options.epsilon);
    h.psi = hplan.window;
    h.window_epsilon = hplan.window_epsilon;
    h.fox_glynn_right = hplan.fox_glynn_right;
    h.engaged = hplan.engaged();
    h.resolved = hplan.resolved;
    h.residual = hplan.window_epsilon;
    h.acc.assign(n, 0.0);
    right_max = std::max(right_max, h.psi.right());
    any_engaged = any_engaged || h.engaged;
  }

  std::vector<double> cur(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) cur[s] = goal[s] ? 1.0 : 0.0;

  // Shared locking state (the batch shares one iterate, hence one frozen
  // set) and the shared survival record: u_i is a pure function of the
  // kernel, so one iterate serves every engaged horizon and each horizon's
  // fold decision is bit-identical to its single-t run's.
  const bool locking = options.locking;
  BitVector locked;
  std::size_t locked_count = 0;
  std::vector<std::vector<StateId>> cand;
  if (locking) {
    locked.assign(n, false);
    cand.resize(pool.size());
  }
  std::vector<std::uint64_t> upd(pool.size() * std::size_t{8}, 0);
  auto upd_total = [&] {
    std::uint64_t total = 0;
    for (std::size_t wkr = 0; wkr < pool.size(); ++wkr) total += upd[wkr * std::size_t{8}];
    return total;
  };
  LyapunovSeries series(options.epsilon / 2.0);
  bool cert_active = any_engaged;
  std::vector<double> u;
  std::vector<double> u_next;
  if (cert_active) {
    u.assign(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) u[s] = goal[s] ? 0.0 : 1.0;
    u_next.assign(n, 0.0);
  }

  RunGuard* const guard = options.guard;
  std::atomic<bool> sweep_aborted{false};
  std::uint64_t executed = 0;
  std::size_t remaining = num_horizons;
  for (std::uint64_t i = 0; remaining > 0; ++i) {
    if (guard != nullptr && guard->poll() != RunStatus::Converged) {
      for (Horizon& h : horizons) {
        if (h.done) continue;
        h.status = guard->status();
        h.residual = h.psi.tail_mass(i) + h.window_epsilon;
        h.executed = executed;
        h.state_updates = upd_total();
        h.locked_final = locked_count;
        h.done = true;
      }
      break;
    }
    for (Horizon& h : horizons) {
      if (h.done) continue;
      const double w = h.psi.psi(i);
      if (w > 0.0) {
        double* acc = h.acc.data();
        for (std::size_t s = 0; s < n; ++s) acc[s] += w * cur[s];
      }
      if (i >= h.psi.right()) {
        h.executed = executed;
        h.state_updates = upd_total();
        h.locked_final = locked_count;
        h.done = true;
        --remaining;
      }
    }
    if (remaining == 0) break;
    const bool cert_open = cert_active && [&] {
      for (const Horizon& h : horizons) {
        if (!h.done && h.engaged) return true;
      }
      return false;
    }();
    if (locking && locked_count == n && guard == nullptr && !options.early_termination &&
        !cert_open) {
      // Every row frozen: the sweep and swap are provable no-ops (see the
      // single-horizon engine); only the accumulations above still run.
      ++executed;
      continue;
    }
    p.step_backward(cur, next, pool, guard, sweep_aborted, rows_out, ops,
                    locking ? &locked : nullptr, locking ? &cand : nullptr, upd.data());
    if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
      for (Horizon& h : horizons) {
        if (h.done) continue;
        h.status = guard->status();
        h.residual = h.psi.tail_mass(i + 1) + h.window_epsilon;
        h.executed = executed;
        h.state_updates = upd_total();
        h.locked_final = locked_count;
        h.done = true;
      }
      break;
    }
    ++executed;
    if (locking) {
      for (std::vector<StateId>& c : cand) {
        for (const StateId s : c) locked.set(s);
        locked_count += c.size();
        c.clear();
      }
    }
    if (options.early_termination &&
        max_abs_diff(cur, next) <= options.early_termination_delta) {
      // Every still-open horizon's single-t run would fire here too: the
      // shared vector sequence makes the first qualifying step identical.
      for (Horizon& h : horizons) {
        if (h.done) continue;
        const double tail = h.psi.tail_mass(i + 1);
        double* acc = h.acc.data();
        for (std::size_t s = 0; s < n; ++s) acc[s] += tail * next[s];
        h.residual += options.early_termination_delta;
        h.early_step = executed;
        h.executed = executed;
        h.state_updates = upd_total();
        h.locked_final = locked_count;
        h.done = true;
      }
      cur.swap(next);
      break;
    }
    if (cert_open) {
      p.step_backward(u, u_next, pool, nullptr, sweep_aborted);
      u.swap(u_next);
      double ub = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        if (!(u[s] <= ub)) ub = u[s];  // NaN-latching sup
      }
      series.record(ub);
      if (series.should_disengage(series.size())) {
        // All horizons share the survival record, so the probe-cap
        // disengage fires for every one of them at exactly the step its
        // single-t run would disengage at.
        cert_active = false;
        u = std::vector<double>();
        u_next = std::vector<double>();
      } else {
        for (Horizon& h : horizons) {
          if (h.done || !h.engaged) continue;
          const double tail = h.psi.tail_mass(i + 1);
          if (tail * ub <= options.epsilon / 2.0) {
            double* acc = h.acc.data();
            for (std::size_t s = 0; s < n; ++s) acc[s] += tail * next[s];
            h.residual += tail * ub;
            h.k_lyapunov = executed;
            h.executed = executed;
            h.state_updates = upd_total();
            h.locked_final = locked_count;
            h.done = true;
            --remaining;
          }
        }
        if (remaining == 0) {
          cur.swap(next);
          break;
        }
      }
    }
    cur.swap(next);
  }

  for (std::size_t j = 0; j < num_horizons; ++j) {
    Horizon& h = horizons[j];
    require_finite(h.acc, "timed_reachability");
    for (std::size_t s = 0; s < n; ++s) h.acc[s] = goal[s] ? 1.0 : clamp01(h.acc[s]);
    TransientResult r{std::move(h.acc), h.psi.right(), h.executed, e};
    r.status = h.status;
    r.residual_bound = h.residual;
    r.truncation = h.resolved;
    r.k_lyapunov = h.k_lyapunov;
    // Shared sweeps: per horizon this counts the relaxations performed
    // while that horizon was still open (a single-t run of the same
    // horizon owns all of its sweeps, so the counts are work metrics, not
    // part of the bit-identity contract).
    r.state_updates = h.state_updates;
    r.locked_final = h.locked_final;
    results[j] = std::move(r);
  }
  if (span) {
    span->metric("states", n);
    span->metric("uniform_rate", e);
    span->metric("horizons", num_horizons);
    span->metric("iterations_planned_max", right_max);
    span->metric("iterations_executed", executed);
    span->metric("threads", pool.size());
    for (std::size_t j = 0; j < num_horizons; ++j) {
      const Horizon& h = horizons[j];
      Telemetry::Span hspan = options.telemetry->span("ctmc_reachability_batch.horizon");
      hspan.metric("t", times[j]);
      hspan.metric("lambda", e * times[j]);
      hspan.metric("poisson_left", h.psi.left());
      hspan.metric("poisson_right", h.psi.right());
      hspan.metric("iterations_executed", h.executed);
      hspan.metric("early_termination_step", h.early_step);
      hspan.metric("residual_bound", results[j].residual_bound);
      hspan.metric("truncation.k_fox_glynn", h.fox_glynn_right);
      hspan.metric("truncation.k_effective", h.executed);
      hspan.metric("truncation.k_lyapunov", h.k_lyapunov);
      hspan.metric("truncation.locked_final", h.locked_final);
      hspan.metric("truncation.state_updates", h.state_updates);
    }
  }
  return results;
}

TransientResult interval_reachability(const Ctmc& chain, const BitVector& goal,
                                      double t1, double t2, const TransientOptions& options) {
  if (t1 < 0.0 || t2 < t1) throw ModelError("interval_reachability: need 0 <= t1 <= t2");
  if (goal.size() != chain.num_states()) {
    throw ModelError("interval_reachability: goal vector size mismatch");
  }
  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) {
    span.emplace(options.telemetry->span("interval_reachability"));
  }
  // Phase A: values w(s) = Pr(s, <= t2 - t1, B), B absorbing.
  TransientResult phase_a = timed_reachability(chain, goal, t2 - t1, options);
  if (phase_a.status != RunStatus::Converged) {
    // The phase-B propagation never ran, so phase A's tail-mass bound does
    // not cover the distance to the true interval answer; only the trivial
    // bound is sound here.
    phase_a.residual_bound = 1.0;
    return phase_a;
  }
  if (t1 == 0.0) return phase_a;

  // Phase B: propagate the terminal vector w backward for t1 over the
  // unmodified chain (B is not absorbing before t1).
  const std::size_t n = chain.num_states();
  const double e = pick_rate(chain, options);
  const PoissonWindow psi = PoissonWindow::compute(e * t1, options.epsilon);
  const JumpKernel p(chain, e);
  const KernelOps* const ops = JumpKernel::ops_for(resolve_backend(options.backend));
  WorkerPool pool = make_worker_pool(options.threads, n);
  const std::vector<Counter*> row_counters = worker_row_counters(options.telemetry, pool.size());
  Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

  std::vector<double> cur = std::move(phase_a.probabilities);
  std::vector<double> next(n, 0.0);
  std::vector<double> acc(n, 0.0);

  RunGuard* const guard = options.guard;
  std::atomic<bool> sweep_aborted{false};
  RunStatus status = RunStatus::Converged;
  // Phase A contributes its own epsilon to the end-to-end error.
  double residual = phase_a.residual_bound + options.epsilon;

  std::uint64_t executed = phase_a.iterations_executed;
  for (std::uint64_t i = 0;; ++i) {
    if (guard != nullptr && guard->poll() != RunStatus::Converged) {
      status = guard->status();
      residual = psi.tail_mass(i) + phase_a.residual_bound + options.epsilon;
      break;
    }
    const double w = psi.psi(i);
    if (w > 0.0) {
      for (std::size_t s = 0; s < n; ++s) acc[s] += w * cur[s];
    }
    if (i >= psi.right()) break;
    p.step_backward(cur, next, pool, guard, sweep_aborted, rows_out, ops);
    if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
      status = guard->status();
      residual = psi.tail_mass(i + 1) + phase_a.residual_bound + options.epsilon;
      break;
    }
    ++executed;
    if (guard != nullptr) {
      guard->checkpoint("interval_reachability", executed,
                        phase_a.iterations + psi.right(),
                        psi.tail_mass(i + 1) + phase_a.residual_bound + options.epsilon,
                        std::span<double>(next.data(), next.size()));
    }
    if (options.early_termination &&
        max_abs_diff(cur, next) <= options.early_termination_delta) {
      const double tail = psi.tail_mass(i + 1);
      for (std::size_t s = 0; s < n; ++s) acc[s] += tail * next[s];
      residual += options.early_termination_delta;
      break;
    }
    cur.swap(next);
  }
  require_finite(acc, "interval_reachability");
  for (double& v : acc) v = clamp01(v);
  TransientResult result{std::move(acc), phase_a.iterations + psi.right(), executed, e};
  result.status = status;
  result.residual_bound = residual;
  if (span) {
    span->metric("states", n);
    span->metric("uniform_rate", e);
    span->metric("iterations_planned", result.iterations);
    span->metric("iterations_executed", executed);
    span->metric("threads", pool.size());
    span->metric("residual_bound", residual);
  }
  return result;
}

}  // namespace unicon
