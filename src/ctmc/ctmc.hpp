// Continuous-time Markov chains.
//
// A CTMC is stored as a sparse rate matrix (self-loops permitted — they are
// meaningful after uniformization) plus an initial state.  CTMCs are the
// stochastic substrate of the paper: phase-type distributions are absorbing
// CTMCs, time constraints are uniformized CTMCs wrapped by the elapse
// operator, and the Figure 4 baseline is plain CTMC transient analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/bit_vector.hpp"
#include "support/sparse.hpp"
#include "support/symbols.hpp"

namespace unicon {

class CtmcBuilder;

class Ctmc {
 public:
  Ctmc() = default;

  std::size_t num_states() const { return rates_.rows(); }
  std::size_t num_transitions() const { return rates_.entries(); }
  StateId initial() const { return initial_; }

  /// Rates emanating from @p s (including any self-loop).
  std::span<const SparseEntry> out(StateId s) const { return rates_.row(s); }
  const CsrMatrix& rate_matrix() const { return rates_; }

  /// Exit rate E_s = r(s, S) (self-loops included).
  double exit_rate(StateId s) const { return rates_.row_sum(s); }

  /// Largest exit rate over all states.
  double max_exit_rate() const;

  /// If all exit rates agree up to @p tol, the common rate; else nullopt.
  /// A CTMC with rate 0 everywhere (no transitions) is uniform with E = 0.
  std::optional<double> uniform_rate(double tol = 1e-9) const;

  bool is_uniform(double tol = 1e-9) const { return uniform_rate(tol).has_value(); }

  /// Jensen uniformization [19]: pads every state with a self-loop so that
  /// all exit rates equal @p rate.  @p rate must be >= the maximal exit
  /// rate; passing 0 selects the maximal exit rate itself.  The transient
  /// behaviour (state probabilities over time) is unchanged.
  Ctmc uniformize(double rate = 0.0) const;

  /// Returns a copy in which every state flagged in @p absorbing has all
  /// outgoing transitions removed.  Used for time-bounded reachability.
  Ctmc make_absorbing(const BitVector& absorbing) const;

  std::size_t memory_bytes() const { return rates_.memory_bytes(); }

 private:
  friend class CtmcBuilder;
  CsrMatrix rates_;
  StateId initial_ = 0;
};

class CtmcBuilder {
 public:
  explicit CtmcBuilder(std::size_t num_states = 0) : builder_(num_states) {}

  StateId add_state();
  void ensure_states(std::size_t n);
  void set_initial(StateId s) { initial_ = s; }

  /// Adds a Markov transition with @p rate > 0; parallel transitions
  /// accumulate (the Markov transition relation is multiset-like).
  void add_transition(StateId from, double rate, StateId to);

  Ctmc build();

 private:
  CsrBuilder builder_;
  std::size_t num_states_ = 0;
  StateId initial_ = 0;
};

}  // namespace unicon
