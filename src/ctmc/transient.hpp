// Transient analysis of CTMCs via Jensen uniformization.
//
// This is the classical machinery the paper's Figure 4 baseline relies on
// (ETMCC-style CTMC model checking): the transient distribution at time t is
//     pi(t) = sum_n psi(n, E t) * pi(0) P^n
// for the uniformized jump matrix P, and time-bounded reachability of a goal
// set B is the transient mass in B after making B absorbing.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "support/backend.hpp"
#include "support/bit_vector.hpp"
#include "support/lyapunov_bound.hpp"
#include "support/run_guard.hpp"

namespace unicon {

class Telemetry;

struct TransientOptions {
  /// Total truncation error budget for the Poisson series.
  double epsilon = 1e-6;
  /// Optional uniformization rate override (0 = maximal exit rate).
  double uniform_rate = 0.0;
  /// Truncation-bound provider for timed_reachability (single and batch);
  /// see TimedReachabilityOptions::truncation and DESIGN.md Sec. 14.  When
  /// the certificate engages, epsilon is split: the window runs at
  /// epsilon/2 and the remaining mass is folded onto the current iterate
  /// once tail_mass * ubar drops under the other epsilon/2.
  /// transient_distribution and the phase-B propagation of
  /// interval_reachability ignore this (their iterate is not monotone
  /// toward an absorbing fixpoint); interval phase A is a plain
  /// timed_reachability call and honours it.
  Truncation truncation = Truncation::Auto;
  /// On-the-fly convergence locking for the backward reachability sweeps:
  /// rows whose value is bitwise unchanged with all successors locked are
  /// skipped from then on.  Values are bit-identical with locking on or
  /// off; once every row is locked the matrix sweeps stop entirely and
  /// only the Poisson accumulation continues.
  bool locking = true;
  /// Steady-state detection: once the iteration vector has converged to
  /// within early_termination_delta in sup norm, the remaining Poisson mass
  /// is folded in analytically and the loop stops.  Exact for absorbing
  /// chains up to the requested precision; a large win for long horizons.
  bool early_termination = false;
  double early_termination_delta = 1e-12;
  /// Worker threads for the per-iteration matrix sweeps.  0 picks
  /// hardware_concurrency, 1 is the serial path (no threads spawned).
  /// Results are bit-identical for every thread count: both sweep
  /// directions are gathers over precomputed rows with a fixed
  /// accumulation order per state.
  unsigned threads = 0;
  /// Compute backend for the matrix sweeps.  Auto resolves via
  /// UNICON_BACKEND (else Serial).  Serial keeps the historical sequential
  /// per-row accumulation; Simd runs the striped-lane gather kernel (AVX2
  /// when available, portable stripes otherwise) and differs from Serial
  /// by FP reassociation only (DESIGN.md Sec. 10).  Every backend is
  /// bit-identical to itself across all thread counts.
  Backend backend = Backend::Auto;
  /// Optional execution control, polled per uniformization step and every
  /// ~2k states inside parallel sweeps.  On a stop the solver returns a
  /// partial result: `status` names the cause, `residual_bound` bounds
  /// |reported - true| per state by the unaccumulated Poisson window mass
  /// (plus the epsilon slop).  Null = unguarded, bit-identical to
  /// pre-guard behaviour.
  RunGuard* guard = nullptr;
  /// Optional observability: a "transient" / "ctmc_reachability" /
  /// "interval_reachability" span with the Poisson window, iteration
  /// counts and early-termination step, plus per-worker row counters
  /// ("ctmc.rows.worker<i>") batched once per sweep.  A live registry
  /// only observes — results stay bit-identical with telemetry on or off.
  Telemetry* telemetry = nullptr;
};

struct TransientResult {
  /// Probability per state.
  std::vector<double> probabilities;
  /// Number of jump-matrix applications the Poisson window demands (the
  /// right truncation bound).
  std::uint64_t iterations = 0;
  /// Applications actually performed (< iterations when steady-state
  /// detection fired).
  std::uint64_t iterations_executed = 0;
  /// Uniformization rate actually used.
  double uniform_rate = 0.0;
  /// Converged, or the RunGuard budget that stopped the solve early.
  RunStatus status = RunStatus::Converged;
  /// Sound per-state bound on |probabilities[s] - true value|; epsilon-ish
  /// when Converged, the unaccumulated window mass plus slop otherwise.
  /// For interval_reachability interrupted in its first phase the bound
  /// degrades to the trivial 1.
  double residual_bound = 0.0;
  /// Resolved truncation provider (never Auto); FoxGlynn for the analyses
  /// that ignore the option.
  Truncation truncation = Truncation::FoxGlynn;
  /// Step at which the Lyapunov fold fired (effective truncation
  /// k_lyapunov); 0 when it never did.
  std::uint64_t k_lyapunov = 0;
  /// Row relaxations actually performed across the executed sweeps (rows
  /// skipped by convergence locking excluded).
  std::uint64_t state_updates = 0;
  /// Rows locked by on-the-fly convergence detection at the end.
  std::uint64_t locked_final = 0;
};

/// Distribution over states at time @p t, starting from the initial state.
TransientResult transient_distribution(const Ctmc& chain, double t,
                                       const TransientOptions& options = {});

/// For every state s: probability to reach (and possibly leave again —
/// prevented by making @p goal absorbing internally) a goal state within
/// @p t time units, Pr(s, <=t, B).
TransientResult timed_reachability(const Ctmc& chain, const BitVector& goal,
                                   double t, const TransientOptions& options = {});

/// Multi-horizon timed reachability: one shared uniformization run
/// answering every time bound in @p times, results in input order.  The
/// step vectors v_i of the absorbing uniformized chain do not depend on
/// the time bound — only the Poisson weights do — so the batch performs
/// the matrix sweeps once and keeps one weighted accumulator per horizon.
/// Every answer (values, residual bound, iteration counts, early
/// termination) is bit-identical to an independent
/// `timed_reachability(chain, goal, times[j], options)` call.  A guard
/// stop finalizes the unfinished horizons with their own sound residual
/// bounds; guard checkpoints are not published from batch solves.
std::vector<TransientResult> timed_reachability_batch(const Ctmc& chain, const BitVector& goal,
                                                      const std::vector<double>& times,
                                                      const TransientOptions& options = {});

/// Interval reachability Pr(s, [t1, t2], B): the probability that the chain
/// occupies a goal state at some time within [t1, t2] (CSL interval until
/// with a trivial left argument).  Computed by the standard two-phase
/// uniformization: reach-within-(t2 - t1) values with B absorbing, then
/// propagated backward for t1 over the *unmodified* chain.
TransientResult interval_reachability(const Ctmc& chain, const BitVector& goal,
                                      double t1, double t2,
                                      const TransientOptions& options = {});

}  // namespace unicon
