#include "ctmc/phase_type.hpp"

#include <algorithm>
#include <cmath>

#include "ctmc/transient.hpp"
#include "support/errors.hpp"

namespace unicon {

PhaseType PhaseType::exponential(double rate) {
  if (!(rate > 0.0)) throw ModelError("PhaseType::exponential: rate must be positive");
  PhaseType ph;
  ph.phase_rates_ = CsrBuilder(1).finish();
  ph.absorption_ = {rate};
  return ph;
}

PhaseType PhaseType::erlang(std::size_t k, double rate) {
  if (k == 0) throw ModelError("PhaseType::erlang: k must be positive");
  return hypoexponential(std::vector<double>(k, rate));
}

PhaseType PhaseType::hypoexponential(const std::vector<double>& rates) {
  if (rates.empty()) throw ModelError("PhaseType::hypoexponential: empty rate list");
  PhaseType ph;
  CsrBuilder b(rates.size());
  ph.absorption_.assign(rates.size(), 0.0);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (!(rates[i] > 0.0)) throw ModelError("PhaseType: rates must be positive");
    if (i + 1 < rates.size()) {
      b.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 1), rates[i]);
    } else {
      ph.absorption_[i] = rates[i];
    }
  }
  ph.phase_rates_ = b.finish();
  return ph;
}

PhaseType PhaseType::deterministic_approx(double mean, std::size_t phases) {
  if (!(mean > 0.0)) throw ModelError("PhaseType::deterministic_approx: mean must be positive");
  if (phases == 0) throw ModelError("PhaseType::deterministic_approx: phases must be positive");
  return erlang(phases, static_cast<double>(phases) / mean);
}

PhaseType PhaseType::coxian(const std::vector<double>& rates,
                            const std::vector<double>& exit_probs) {
  if (rates.empty() || rates.size() != exit_probs.size()) {
    throw ModelError("PhaseType::coxian: rates and exit_probs must match and be non-empty");
  }
  if (std::fabs(exit_probs.back() - 1.0) > 1e-12) {
    throw ModelError("PhaseType::coxian: last exit probability must be 1");
  }
  PhaseType ph;
  CsrBuilder b(rates.size());
  ph.absorption_.assign(rates.size(), 0.0);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (!(rates[i] > 0.0)) throw ModelError("PhaseType: rates must be positive");
    const double p = exit_probs[i];
    if (p < 0.0 || p > 1.0) throw ModelError("PhaseType::coxian: exit probability out of [0,1]");
    ph.absorption_[i] = rates[i] * p;
    if (i + 1 < rates.size() && p < 1.0) {
      b.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 1), rates[i] * (1.0 - p));
    }
  }
  ph.phase_rates_ = b.finish();
  return ph;
}

double PhaseType::exit_rate(std::size_t i) const {
  return phase_rates_.row_sum(i) + absorption_[i];
}

double PhaseType::max_exit_rate() const {
  double m = 0.0;
  for (std::size_t i = 0; i < num_phases(); ++i) m = std::max(m, exit_rate(i));
  return m;
}

double PhaseType::mean() const {
  // Solve (I - P) m = 1/E elementwise on the embedded jump chain:
  // m_i = 1/E_i + sum_j P(i,j) m_j.  The phase graph of all factory-built
  // distributions is acyclic (upper triangular), so a reverse sweep solves
  // the system exactly; for safety we fall back to fixed-point iteration
  // when a cycle is present.
  const std::size_t n = num_phases();
  std::vector<double> m(n, 0.0);
  bool acyclic = true;
  for (std::size_t i = 0; i < n; ++i) {
    for (const SparseEntry& e : phase_rates_.row(i)) {
      if (e.col <= i) acyclic = false;
    }
  }
  if (acyclic) {
    for (std::size_t i = n; i-- > 0;) {
      const double exit = exit_rate(i);
      double acc = 1.0 / exit;
      for (const SparseEntry& e : phase_rates_.row(i)) acc += (e.value / exit) * m[e.col];
      m[i] = acc;
    }
    return m[0];
  }
  for (int iter = 0; iter < 100000; ++iter) {
    double delta = 0.0;
    for (std::size_t i = n; i-- > 0;) {
      const double exit = exit_rate(i);
      double acc = 1.0 / exit;
      for (const SparseEntry& e : phase_rates_.row(i)) acc += (e.value / exit) * m[e.col];
      delta = std::max(delta, std::fabs(acc - m[i]));
      m[i] = acc;
    }
    if (delta < 1e-14) break;
  }
  return m[0];
}

Ctmc PhaseType::to_ctmc() const {
  const std::size_t n = num_phases();
  CtmcBuilder b(n + 1);
  b.ensure_states(n + 1);
  b.set_initial(0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const SparseEntry& e : phase_rates_.row(i)) {
      b.add_transition(static_cast<StateId>(i), e.value, e.col);
    }
    if (absorption_[i] > 0.0) {
      b.add_transition(static_cast<StateId>(i), absorption_[i], static_cast<StateId>(n));
    }
  }
  return b.build();
}

double PhaseType::cdf(double t, double epsilon) const {
  if (t < 0.0) return 0.0;
  const Ctmc chain = to_ctmc();
  BitVector goal(chain.num_states());
  goal.set(chain.num_states() - 1);
  const auto result = timed_reachability(chain, goal, t, TransientOptions{epsilon});
  return result.probabilities[0];
}

}  // namespace unicon
