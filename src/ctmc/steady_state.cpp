#include "ctmc/steady_state.hpp"

#include <algorithm>
#include <cmath>

#include "support/errors.hpp"
#include "support/numerics.hpp"

namespace unicon {

SteadyStateResult steady_state(const Ctmc& chain, const SteadyStateOptions& options) {
  const std::size_t n = chain.num_states();
  const double max_rate = chain.max_exit_rate();
  double e = options.uniform_rate != 0.0 ? options.uniform_rate : 1.05 * max_rate;
  if (e == 0.0) e = 1.0;  // no transitions at all: the initial state is it
  if (e + 1e-12 < max_rate) {
    throw UniformityError("steady_state: uniformization rate below maximal exit rate");
  }

  std::vector<double> cur(n, 0.0), next(n, 0.0);
  cur[chain.initial()] = 1.0;

  SteadyStateResult result;
  for (std::uint64_t i = 0; i < options.max_iterations; ++i) {
    // next = cur P with implicit diagonal 1 - exit/E.
    for (StateId s = 0; s < n; ++s) next[s] = cur[s] * (1.0 - chain.exit_rate(s) / e);
    for (StateId s = 0; s < n; ++s) {
      const double mass = cur[s];
      if (mass == 0.0) continue;
      for (const SparseEntry& t : chain.out(s)) next[t.col] += mass * (t.value / e);
    }
    const double total = l1_norm(next);
    if (total > 0.0) {
      for (double& v : next) v /= total;
    }
    const double delta = max_abs_diff(cur, next);
    cur.swap(next);
    ++result.iterations;
    if (delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.distribution = std::move(cur);
  return result;
}

}  // namespace unicon
