// Phase-type distributions.
//
// A phase-type distribution is the distribution of the time until absorption
// in a finite absorbing CTMC [23].  The paper uses them as the timing
// specification fed to the elapse operator: any distribution on [0, inf) can
// be approximated arbitrarily closely given enough phases.
//
// We store the transient part explicitly: `phases` transient states with a
// sparse rate matrix among themselves plus per-phase absorption rates.  The
// elapse operator requires a distinguished initial *state* (phase 0); the
// common point-initial families (exponential, Erlang, Coxian, and
// generalized Erlang chains) are provided as factories.
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "support/sparse.hpp"

namespace unicon {

class PhaseType {
 public:
  /// Exponential distribution with the given rate (one phase).
  static PhaseType exponential(double rate);

  /// Erlang distribution: @p k sequential phases each with rate @p rate.
  static PhaseType erlang(std::size_t k, double rate);

  /// Coxian distribution: phase i has service rate rates[i]; after phase i
  /// the process absorbs with probability exit_probs[i] and otherwise moves
  /// to phase i+1 (exit_probs.back() must be 1).
  static PhaseType coxian(const std::vector<double>& rates,
                          const std::vector<double>& exit_probs);

  /// Hypoexponential (generalized Erlang): sequential phases with the given
  /// per-phase rates.
  static PhaseType hypoexponential(const std::vector<double>& rates);

  /// Erlang approximation of a deterministic delay of the given mean: an
  /// Erlang(k, k / mean) has mean `mean` and coefficient of variation
  /// 1/sqrt(k) — increase @p phases for a sharper delay.
  static PhaseType deterministic_approx(double mean, std::size_t phases = 16);

  std::size_t num_phases() const { return absorption_.size(); }

  /// Rates among transient phases (no absorption entries).
  const CsrMatrix& phase_rates() const { return phase_rates_; }

  /// Rate from phase @p i into the absorbing state.
  double absorption_rate(std::size_t i) const { return absorption_[i]; }

  /// Exit rate of phase @p i (internal + absorption).
  double exit_rate(std::size_t i) const;

  /// Largest exit rate over all phases — the minimal admissible
  /// uniformization rate.
  double max_exit_rate() const;

  /// Mean of the distribution (expected time to absorption from phase 0).
  double mean() const;

  /// P[T <= t], evaluated by uniformization with truncation error epsilon.
  double cdf(double t, double epsilon = 1e-10) const;

  /// The underlying absorbing CTMC: phases 0..n-1 plus absorbing state n,
  /// initial state 0.
  Ctmc to_ctmc() const;

 private:
  PhaseType() = default;
  CsrMatrix phase_rates_;
  std::vector<double> absorption_;
};

}  // namespace unicon
