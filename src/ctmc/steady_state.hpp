// Long-run (steady-state) analysis of CTMCs.
//
// The stationary distribution pi solves pi Q = 0, pi 1 = 1; on the
// uniformized jump chain P this is the fixed point pi = pi P, computed here
// by power iteration with periodic renormalization.  Requires an
// irreducible chain reachable from the initial state (more precisely: the
// iteration converges to the stationary distribution of the recurrent class
// reached from the initial state; chains with several closed classes give
// the class-weighted limit).
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/ctmc.hpp"

namespace unicon {

struct SteadyStateOptions {
  double tolerance = 1e-12;
  std::uint64_t max_iterations = 1u << 22;
  /// Uniformization rate override (0 = 1.05 x maximal exit rate; the small
  /// margin keeps the jump chain aperiodic).
  double uniform_rate = 0.0;
};

struct SteadyStateResult {
  std::vector<double> distribution;
  std::uint64_t iterations = 0;
  bool converged = false;
};

/// Long-run state distribution starting from the initial state.
SteadyStateResult steady_state(const Ctmc& chain, const SteadyStateOptions& options = {});

}  // namespace unicon
