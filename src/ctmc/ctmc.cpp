#include "ctmc/ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "support/errors.hpp"

namespace unicon {

double Ctmc::max_exit_rate() const {
  double m = 0.0;
  for (StateId s = 0; s < num_states(); ++s) m = std::max(m, exit_rate(s));
  return m;
}

std::optional<double> Ctmc::uniform_rate(double tol) const {
  if (num_states() == 0) return 0.0;
  const double e0 = exit_rate(0);
  for (StateId s = 1; s < num_states(); ++s) {
    if (std::fabs(exit_rate(s) - e0) > tol) return std::nullopt;
  }
  return e0;
}

Ctmc Ctmc::uniformize(double rate) const {
  const double max_rate = max_exit_rate();
  double e = rate == 0.0 ? max_rate : rate;
  if (e + 1e-12 < max_rate) {
    throw UniformityError("Ctmc::uniformize: rate below maximal exit rate");
  }
  CtmcBuilder b(num_states());
  b.ensure_states(num_states());
  b.set_initial(initial_);
  for (StateId s = 0; s < num_states(); ++s) {
    double exit = 0.0;
    for (const SparseEntry& t : out(s)) {
      b.add_transition(s, t.value, t.col);
      exit += t.value;
    }
    const double pad = e - exit;
    if (pad > 1e-12) b.add_transition(s, pad, s);
  }
  return b.build();
}

Ctmc Ctmc::make_absorbing(const BitVector& absorbing) const {
  CtmcBuilder b(num_states());
  b.ensure_states(num_states());
  b.set_initial(initial_);
  for (StateId s = 0; s < num_states(); ++s) {
    if (s < absorbing.size() && absorbing[s]) continue;
    for (const SparseEntry& t : out(s)) b.add_transition(s, t.value, t.col);
  }
  return b.build();
}

StateId CtmcBuilder::add_state() {
  builder_.reserve_rows(num_states_ + 1);
  return static_cast<StateId>(num_states_++);
}

void CtmcBuilder::ensure_states(std::size_t n) {
  if (n > num_states_) {
    num_states_ = n;
    builder_.reserve_rows(n);
  }
}

void CtmcBuilder::add_transition(StateId from, double rate, StateId to) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw ModelError("Ctmc: transition rate must be positive and finite");
  }
  ensure_states(std::max<std::size_t>(from + 1, to + 1));
  builder_.add(from, to, rate);
}

Ctmc CtmcBuilder::build() {
  if (num_states_ == 0) throw ModelError("Ctmc: at least one state required");
  if (initial_ >= num_states_) throw ModelError("Ctmc: initial state out of range");
  builder_.reserve_rows(num_states_);
  Ctmc c;
  c.rates_ = builder_.finish();
  c.initial_ = initial_;
  num_states_ = 0;
  initial_ = 0;
  return c;
}

}  // namespace unicon
