// Labeled transition systems.
//
// LTSs describe the functional behaviour of components (Fig. 2 of the
// paper).  They are special IMCs with an empty Markov transition relation
// and are, by definition, uniform with rate E = 0.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/symbols.hpp"

namespace unicon {

/// One interactive transition from(s) --action--> to.
struct LtsTransition {
  StateId from = 0;
  Action action = kTau;
  StateId to = 0;

  friend bool operator==(const LtsTransition&, const LtsTransition&) = default;
};

class LtsBuilder;

/// An immutable labeled transition system.  States are dense ids; the action
/// table is shared so that independently built components agree on action
/// ids when composed.
class Lts {
 public:
  Lts() : actions_(std::make_shared<ActionTable>()) {}

  std::size_t num_states() const { return num_states_; }
  std::size_t num_transitions() const { return transitions_.size(); }
  StateId initial() const { return initial_; }

  const ActionTable& actions() const { return *actions_; }
  const std::shared_ptr<ActionTable>& action_table() const { return actions_; }

  /// Transitions emanating from state @p s, sorted by (action, target).
  std::span<const LtsTransition> out(StateId s) const {
    return std::span<const LtsTransition>(transitions_.data() + row_[s],
                                          transitions_.data() + row_[s + 1]);
  }

  /// All transitions, grouped by source state.
  std::span<const LtsTransition> transitions() const { return transitions_; }

  /// Optional human-readable state name ("" when unnamed).
  const std::string& state_name(StateId s) const;

  /// Returns a copy in which every action in @p hidden is replaced by tau.
  Lts hide(const std::unordered_set<Action>& hidden) const;

  /// Returns a copy with actions renamed according to @p renaming (actions
  /// not in the map are unchanged).  This is process-algebraic relabelling,
  /// used to instantiate e.g. the generic grab/release actions of Fig. 2.
  Lts relabel(const std::unordered_map<Action, Action>& renaming) const;

  /// Returns the restriction to states reachable from the initial state.
  Lts reachable() const;

  /// True iff some state has two transitions with the same action to
  /// different targets, or any state has more than one outgoing transition.
  bool deterministic() const;

 private:
  friend class LtsBuilder;
  std::shared_ptr<ActionTable> actions_;
  std::size_t num_states_ = 0;
  StateId initial_ = 0;
  std::vector<LtsTransition> transitions_;  // sorted by (from, action, to)
  std::vector<std::uint64_t> row_;          // num_states_+1 offsets
  std::vector<std::string> state_names_;

  void index();
};

/// Builder for Lts.
class LtsBuilder {
 public:
  /// Creates a builder; components to be composed should share one table.
  explicit LtsBuilder(std::shared_ptr<ActionTable> actions = nullptr);

  /// Adds a state, optionally named; the first added state is initial
  /// unless set_initial is called.
  StateId add_state(std::string name = "");

  /// Ensures at least @p n states exist.
  void ensure_states(std::size_t n);

  void set_initial(StateId s) { initial_ = s; }

  void add_transition(StateId from, Action action, StateId to);
  void add_transition(StateId from, std::string_view action, StateId to);

  Action intern(std::string_view name) { return actions_->intern(name); }
  const std::shared_ptr<ActionTable>& action_table() const { return actions_; }

  /// Finalizes the LTS.  Throws ModelError if empty or ids out of range.
  Lts build();

 private:
  std::shared_ptr<ActionTable> actions_;
  std::size_t num_states_ = 0;
  StateId initial_ = 0;
  std::vector<LtsTransition> transitions_;
  std::vector<std::string> state_names_;
};

}  // namespace unicon
