#include "lts/lts.hpp"

#include <algorithm>

#include "support/errors.hpp"

namespace unicon {

namespace {
const std::string kEmptyName;

bool transition_less(const LtsTransition& a, const LtsTransition& b) {
  if (a.from != b.from) return a.from < b.from;
  if (a.action != b.action) return a.action < b.action;
  return a.to < b.to;
}
}  // namespace

const std::string& Lts::state_name(StateId s) const {
  if (s < state_names_.size()) return state_names_[s];
  return kEmptyName;
}

void Lts::index() {
  std::sort(transitions_.begin(), transitions_.end(), transition_less);
  transitions_.erase(std::unique(transitions_.begin(), transitions_.end()), transitions_.end());
  row_.assign(num_states_ + 1, 0);
  for (const LtsTransition& t : transitions_) ++row_[t.from + 1];
  for (std::size_t i = 0; i < num_states_; ++i) row_[i + 1] += row_[i];
}

Lts Lts::hide(const std::unordered_set<Action>& hidden) const {
  Lts result = *this;
  for (LtsTransition& t : result.transitions_) {
    if (hidden.count(t.action) != 0) t.action = kTau;
  }
  result.index();
  return result;
}

Lts Lts::relabel(const std::unordered_map<Action, Action>& renaming) const {
  Lts result = *this;
  for (LtsTransition& t : result.transitions_) {
    auto it = renaming.find(t.action);
    if (it != renaming.end()) t.action = it->second;
  }
  result.index();
  return result;
}

Lts Lts::reachable() const {
  std::vector<StateId> remap(num_states_, kNoState);
  std::vector<StateId> stack{initial_};
  remap[initial_] = 0;
  StateId next_id = 1;
  std::vector<StateId> order{initial_};
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const LtsTransition& t : out(s)) {
      if (remap[t.to] == kNoState) {
        remap[t.to] = next_id++;
        order.push_back(t.to);
        stack.push_back(t.to);
      }
    }
  }

  LtsBuilder b(actions_);
  for (StateId old : order) b.add_state(state_name(old));
  b.set_initial(0);
  for (const LtsTransition& t : transitions_) {
    if (remap[t.from] != kNoState && remap[t.to] != kNoState) {
      b.add_transition(remap[t.from], t.action, remap[t.to]);
    }
  }
  return b.build();
}

bool Lts::deterministic() const {
  for (StateId s = 0; s < num_states_; ++s) {
    const auto ts = out(s);
    for (std::size_t i = 1; i < ts.size(); ++i) {
      if (ts[i].action == ts[i - 1].action) return false;
    }
  }
  return true;
}

LtsBuilder::LtsBuilder(std::shared_ptr<ActionTable> actions)
    : actions_(actions ? std::move(actions) : std::make_shared<ActionTable>()) {}

StateId LtsBuilder::add_state(std::string name) {
  state_names_.push_back(std::move(name));
  return static_cast<StateId>(num_states_++);
}

void LtsBuilder::ensure_states(std::size_t n) {
  while (num_states_ < n) add_state();
}

void LtsBuilder::add_transition(StateId from, Action action, StateId to) {
  transitions_.push_back(LtsTransition{from, action, to});
}

void LtsBuilder::add_transition(StateId from, std::string_view action, StateId to) {
  add_transition(from, actions_->intern(action), to);
}

Lts LtsBuilder::build() {
  if (num_states_ == 0) throw ModelError("Lts: at least one state required");
  for (const LtsTransition& t : transitions_) {
    if (t.from >= num_states_ || t.to >= num_states_) {
      throw ModelError("Lts: transition references unknown state");
    }
  }
  if (initial_ >= num_states_) throw ModelError("Lts: initial state out of range");

  Lts lts;
  lts.actions_ = actions_;
  lts.num_states_ = num_states_;
  lts.initial_ = initial_;
  lts.transitions_ = std::move(transitions_);
  lts.state_names_ = std::move(state_names_);
  lts.index();

  num_states_ = 0;
  initial_ = 0;
  transitions_.clear();
  state_names_.clear();
  return lts;
}

}  // namespace unicon
