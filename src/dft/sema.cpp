#include "dft/sema.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "dft/parser.hpp"

namespace unicon::dft {

namespace {

[[noreturn]] void fail(SourceLoc loc, std::string message, const std::string& file) {
  throw LangError(Diagnostic{Diagnostic::Category::Semantic, loc, std::move(message)}, file);
}

}  // namespace

CheckedDft check_dft(Dft dft, const std::string& file) {
  const std::size_t n = dft.elements.size();
  CheckedDft out;

  // Name resolution (duplicates first, so later rules see a function).
  std::unordered_map<std::string, std::uint32_t> by_name;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Element& e = dft.elements[i];
    if (!by_name.emplace(e.name, i).second) {
      fail(e.loc, "duplicate element name '" + e.name + "'", file);
    }
  }
  const auto top_it = by_name.find(dft.toplevel);
  if (top_it == by_name.end()) {
    fail(dft.toplevel_loc, "toplevel element '" + dft.toplevel + "' is not declared", file);
  }
  out.top = top_it->second;

  out.children.resize(n);
  out.parents.resize(n);
  out.fdep_listeners.resize(n);
  out.killers.resize(n);
  out.spare_child.assign(n, false);
  out.effective_dorm.assign(n, 1.0);
  out.spare_owner.assign(n, kNoElement);

  for (std::uint32_t i = 0; i < n; ++i) {
    const Element& e = dft.elements[i];
    std::unordered_set<std::uint32_t> seen;
    for (const std::string& child : e.children) {
      const auto it = by_name.find(child);
      if (it == by_name.end()) {
        fail(e.loc, std::string(element_kind_name(e.kind)) + " '" + e.name +
                        "' references undeclared element '" + child + "'",
             file);
      }
      if (!seen.insert(it->second).second) {
        fail(e.loc, "gate '" + e.name + "' lists child '" + child + "' twice", file);
      }
      out.children[i].push_back(it->second);
    }
  }

  // Per-kind structural rules.
  for (std::uint32_t i = 0; i < n; ++i) {
    const Element& e = dft.elements[i];
    const std::vector<std::uint32_t>& kids = out.children[i];
    switch (e.kind) {
      case ElementKind::BasicEvent: {
        if (!e.has_lambda) {
          fail(e.loc, "basic event '" + e.name + "' has no failure rate (lambda=...)", file);
        }
        if (!std::isfinite(e.lambda) || e.lambda <= 0.0) {
          fail(e.loc, "basic event '" + e.name + "' needs a finite failure rate > 0", file);
        }
        if (e.has_dorm && (!std::isfinite(e.dorm) || e.dorm < 0.0 || e.dorm > 1.0)) {
          fail(e.loc, "dormancy factor of '" + e.name + "' must lie in [0, 1]", file);
        }
        ++out.num_basic_events;
        out.total_rate += e.lambda;
        break;
      }
      case ElementKind::Vot:
        if (e.vot_k == 0 || e.vot_k > kids.size()) {
          fail(e.loc, "voting gate '" + e.name + "' needs 1 <= k <= n", file);
        }
        break;
      case ElementKind::Spare:
        if (kids.size() < 2) {
          fail(e.loc, "spare gate '" + e.name + "' needs a primary and at least one spare", file);
        }
        break;
      case ElementKind::Fdep:
        if (kids.size() < 2) {
          fail(e.loc, "fdep '" + e.name + "' needs a trigger and at least one dependent", file);
        }
        break;
      case ElementKind::And:
      case ElementKind::Or:
      case ElementKind::Pand:
        break;  // parser guarantees >= 1 child
    }
  }

  // Listener maps: gate children (fail-signal parents), fdep triggers and
  // kill targets.
  for (std::uint32_t i = 0; i < n; ++i) {
    const Element& e = dft.elements[i];
    const std::vector<std::uint32_t>& kids = out.children[i];
    if (e.kind == ElementKind::Fdep) {
      out.fdep_listeners[kids[0]].push_back(i);
      for (std::size_t j = 1; j < kids.size(); ++j) out.killers[kids[j]].push_back(i);
    } else {
      for (const std::uint32_t c : kids) out.parents[c].push_back(i);
    }
  }

  // Fdep wiring rules.
  for (std::uint32_t i = 0; i < n; ++i) {
    const Element& e = dft.elements[i];
    if (e.kind != ElementKind::Fdep) continue;
    const std::vector<std::uint32_t>& kids = out.children[i];
    if (dft.elements[kids[0]].kind == ElementKind::Fdep) {
      fail(e.loc, "fdep '" + e.name + "' cannot be triggered by another fdep", file);
    }
    for (std::size_t j = 1; j < kids.size(); ++j) {
      if (dft.elements[kids[j]].kind != ElementKind::BasicEvent) {
        fail(e.loc, "fdep '" + e.name + "' dependent '" + dft.elements[kids[j]].name +
                        "' must be a basic event",
             file);
      }
    }
    if (!out.parents[i].empty()) {
      fail(e.loc, "fdep '" + e.name + "' cannot be the input of a gate", file);
    }
    if (i == out.top) fail(e.loc, "fdep '" + e.name + "' cannot be the toplevel", file);
  }

  // Spare-module rules: children are basic events; non-primary spares are
  // exclusively owned and start dormant with the flavour's dormancy.
  for (std::uint32_t i = 0; i < n; ++i) {
    const Element& e = dft.elements[i];
    if (e.kind != ElementKind::Spare) continue;
    const std::vector<std::uint32_t>& kids = out.children[i];
    for (std::size_t j = 0; j < kids.size(); ++j) {
      const std::uint32_t c = kids[j];
      const Element& child = dft.elements[c];
      if (child.kind != ElementKind::BasicEvent) {
        fail(e.loc, "spare gate '" + e.name + "' child '" + child.name +
                        "' must be a basic event (subtree spares are not supported)",
             file);
      }
      if (j == 0) continue;  // primary: shared use is fine
      if (out.spare_owner[c] != kNoElement) {
        fail(e.loc, "basic event '" + child.name + "' is a spare of two spare gates ('" +
                        dft.elements[out.spare_owner[c]].name + "' and '" + e.name + "')",
             file);
      }
      if (out.parents[c].size() > 1) {
        fail(e.loc, "spare '" + child.name + "' of gate '" + e.name +
                        "' cannot also be the input of another gate",
             file);
      }
      if (c == out.top) {
        fail(e.loc, "spare '" + child.name + "' cannot be the toplevel", file);
      }
      out.spare_child[c] = true;
      out.spare_owner[c] = i;
      switch (e.spare) {
        case SpareKind::Cold:
          if (child.has_dorm && child.dorm != 0.0) {
            fail(child.loc, "cold spare '" + child.name + "' must not declare dorm != 0", file);
          }
          out.effective_dorm[c] = 0.0;
          break;
        case SpareKind::Hot:
          if (child.has_dorm && child.dorm != 1.0) {
            fail(child.loc, "hot spare '" + child.name + "' must not declare dorm != 1", file);
          }
          out.effective_dorm[c] = 1.0;
          break;
        case SpareKind::Warm:
          if (!child.has_dorm) {
            fail(child.loc, "warm spare '" + child.name + "' needs an explicit dorm=...", file);
          }
          out.effective_dorm[c] = child.dorm;
          break;
      }
    }
  }
  // A primary must not double as somebody else's spare (activation would
  // race with its from-the-start activity).
  for (std::uint32_t i = 0; i < n; ++i) {
    const Element& e = dft.elements[i];
    if (e.kind != ElementKind::Spare) continue;
    const std::uint32_t primary = out.children[i][0];
    if (out.spare_child[primary]) {
      fail(e.loc, "primary '" + dft.elements[primary].name + "' of spare gate '" + e.name +
                      "' is also a spare of gate '" + dft.elements[out.spare_owner[primary]].name +
                      "'",
           file);
    }
  }
  // Dormancy attributes only make sense on (warm) spares.
  for (std::uint32_t i = 0; i < n; ++i) {
    const Element& e = dft.elements[i];
    if (e.kind == ElementKind::BasicEvent && e.has_dorm && !out.spare_child[i]) {
      fail(e.loc, "basic event '" + e.name + "' declares dorm but is not the spare of any gate",
           file);
    }
  }

  // Cycle detection over the full dependency graph (gate children plus
  // fdep trigger/dependent edges): colors 0 unvisited / 1 on stack / 2 done.
  {
    std::vector<std::uint8_t> color(n, 0);
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    for (std::uint32_t root = 0; root < n; ++root) {
      if (color[root] != 0) continue;
      color[root] = 1;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [node, next] = stack.back();
        if (next < out.children[node].size()) {
          const std::uint32_t child = out.children[node][next++];
          if (color[child] == 1) {
            fail(dft.elements[node].loc, "cycle through '" + dft.elements[node].name + "' and '" +
                                             dft.elements[child].name + "'",
                 file);
          }
          if (color[child] == 0) {
            color[child] = 1;
            stack.emplace_back(child, 0);
          }
        } else {
          color[node] = 2;
          stack.pop_back();
        }
      }
    }
  }

  // Connectivity: closure from the toplevel over gate children; an fdep
  // joins when one of its dependents is connected and then pulls in its
  // trigger (an otherwise-unrelated trigger is a legitimate environmental
  // event).
  {
    std::vector<bool> connected(n, false);
    connected[out.top] = true;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        const Element& e = dft.elements[i];
        if (e.kind == ElementKind::Fdep) {
          bool dependent_connected = false;
          for (std::size_t j = 1; j < out.children[i].size(); ++j) {
            if (connected[out.children[i][j]]) dependent_connected = true;
          }
          if (dependent_connected && !connected[i]) {
            connected[i] = true;
            changed = true;
          }
          if (connected[i]) {
            for (const std::uint32_t c : out.children[i]) {
              if (!connected[c]) {
                connected[c] = true;
                changed = true;
              }
            }
          }
        } else if (connected[i]) {
          for (const std::uint32_t c : out.children[i]) {
            if (!connected[c]) {
              connected[c] = true;
              changed = true;
            }
          }
        }
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!connected[i]) {
        fail(dft.elements[i].loc, std::string(element_kind_name(dft.elements[i].kind)) + " '" +
                                      dft.elements[i].name + "' is not connected to the toplevel",
             file);
      }
    }
  }

  out.ast = std::move(dft);
  return out;
}

CheckedDft parse_and_check_dft(const std::string& source, const std::string& file) {
  return check_dft(parse_dft(source, file), file);
}

}  // namespace unicon::dft
