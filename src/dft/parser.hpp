// Galileo-format parser for dynamic fault trees.
//
// Grammar (EBNF; a practical subset of the Galileo textual format):
//
//   dft       ::= toplevel { element }
//   toplevel  ::= "toplevel" name ";"
//   element   ::= name gate-def ";" | name be-def ";"
//   gate-def  ::= gate-type name { name }
//   gate-type ::= "and" | "or" | "pand" | "wsp" | "csp" | "hsp" | "fdep"
//               | VOT                       (* e.g. 2of3 *)
//   be-def    ::= be-attr { be-attr }
//   be-attr   ::= "lambda" "=" number | "dorm" "=" number
//   name      ::= IDENT | STRING            (* "A" and A are the same name *)
//
// Names may be quoted ("disk1") or bare identifiers; both forms denote the
// same name.  Keywords are contextual: they only act as keywords in the
// position after an element name, so `"and" and "x" "y";` declares a gate
// called `and`.  Comments run `//` or `/* ... */`.  The parser is
// fail-fast: the first lex or parse diagnostic is thrown as LangError with
// its 1-based line:column.
#pragma once

#include <string>

#include "dft/ast.hpp"

namespace unicon::dft {

/// Parses Galileo source; throws LangError (category Lex or Parse) on the
/// first malformed token or grammar violation.
Dft parse_dft(const std::string& source, const std::string& file = "<dft>");

/// Canonical re-print of a parsed tree: one element per line, quoted names,
/// normalized number formatting (%.17g), no comments.  parse_dft is an
/// exact inverse; the analysis server keys its model cache on these bytes
/// so that formatting/comment variants of one DFT share a cache entry.
std::string to_galileo(const Dft& dft);

}  // namespace unicon::dft
