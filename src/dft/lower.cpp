#include "dft/lower.hpp"

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "imc/compose.hpp"
#include "imc/imc.hpp"
#include "support/errors.hpp"
#include "support/telemetry.hpp"

namespace unicon::dft {

namespace {

/// One element's IMC plus the leaf states in which the element counts as
/// failed (used for the "failed" proposition of the top element).
struct Leaf {
  Imc imc;
  std::vector<StateId> failed_states;
};

std::string fail_signal(const Dft& ast, std::uint32_t elem) { return "f." + ast.elements[elem].name; }

Leaf lower_basic_event(const CheckedDft& d, std::uint32_t i,
                       const std::shared_ptr<ActionTable>& actions) {
  const Element& e = d.ast.elements[i];
  ImcBuilder b(actions);
  const Action fail = b.intern(fail_signal(d.ast, i));
  std::vector<Action> kills;
  for (const std::uint32_t g : d.killers[i]) {
    kills.push_back(b.intern("k." + d.ast.elements[g].name + "." + e.name));
  }
  const bool dormant_start = d.spare_child[i];
  const double alpha = d.effective_dorm[i];

  const StateId active = b.add_state("active");
  const StateId failpre = b.add_state("failpre");
  const StateId failed = b.add_state("failed");

  // Active duty: exponential failure at the full rate; a kill forces the
  // failure immediately (the fail signal still travels, so parents see a
  // forced failure exactly like a spontaneous one).
  b.add_markov(active, e.lambda, failpre);
  for (const Action k : kills) b.add_interactive(active, k, failpre);

  // Failure pending: offer the fail signal (urgent in the closed system);
  // the Markov self-loop keeps the exit rate at lambda so uniformity holds
  // by construction in every state.  No activation is accepted here — a
  // spare gate trying to promote this BE must first consume the fail
  // signal (input-enabledness of the gate guarantees that resolves).
  b.add_interactive(failpre, fail, failed);
  for (const Action k : kills) b.add_interactive(failpre, k, failpre);
  b.add_markov(failpre, e.lambda, failpre);

  for (const Action k : kills) b.add_interactive(failed, k, failed);
  b.add_markov(failed, e.lambda, failed);

  if (dormant_start) {
    const Action activate = b.intern("a." + e.name);
    const StateId dormant = b.add_state("dormant");
    // Dormant failure at alpha * lambda; the (1 - alpha) * lambda self-loop
    // pads the exit rate back to lambda (Def. 4 uniformization, leaf-local).
    if (alpha > 0.0) b.add_markov(dormant, alpha * e.lambda, failpre);
    if (alpha < 1.0) b.add_markov(dormant, (1.0 - alpha) * e.lambda, dormant);
    b.add_interactive(dormant, activate, active);
    for (const Action k : kills) b.add_interactive(dormant, k, failpre);
    // Input-enable the (once-only) activation everywhere it is irrelevant.
    b.add_interactive(active, activate, active);
    b.add_interactive(failed, activate, failed);
    b.set_initial(dormant);
  } else {
    b.set_initial(active);
  }
  return Leaf{b.build(), {failpre, failed}};
}

/// VOT(k/n); AND = n-of-n, OR = 1-of-n.  Each child fails at most once, so
/// counting distinct fail signals is counting failed children.
Leaf lower_vot(const CheckedDft& d, std::uint32_t i, std::uint32_t k,
               const std::shared_ptr<ActionTable>& actions) {
  ImcBuilder b(actions);
  const Action fail = b.intern(fail_signal(d.ast, i));
  std::vector<Action> fs;
  for (const std::uint32_t c : d.children[i]) fs.push_back(b.intern(fail_signal(d.ast, c)));

  std::vector<StateId> count(k);
  for (std::uint32_t j = 0; j < k; ++j) count[j] = b.add_state("count" + std::to_string(j));
  const StateId emitpre = b.add_state("emitpre");
  const StateId done = b.add_state("done");

  for (std::uint32_t j = 0; j < k; ++j) {
    const StateId next = j + 1 == k ? emitpre : count[j + 1];
    for (const Action f : fs) b.add_interactive(count[j], f, next);
  }
  b.add_interactive(emitpre, fail, done);
  for (const Action f : fs) b.add_interactive(emitpre, f, emitpre);
  for (const Action f : fs) b.add_interactive(done, f, done);
  b.set_initial(count[0]);
  return Leaf{b.build(), {emitpre, done}};
}

/// Inclusive PAND: fails iff all children fail in left-to-right order.  An
/// out-of-order failure latches the failsafe state.  Interleaving makes
/// "simultaneous" failures an ordering choice of the scheduler, so the
/// sup/inf objectives bound the PAND ambiguity from both sides.
Leaf lower_pand(const CheckedDft& d, std::uint32_t i,
                const std::shared_ptr<ActionTable>& actions) {
  const Element& e = d.ast.elements[i];
  (void)e;
  ImcBuilder b(actions);
  const Action fail = b.intern(fail_signal(d.ast, i));
  std::vector<Action> fs;
  for (const std::uint32_t c : d.children[i]) fs.push_back(b.intern(fail_signal(d.ast, c)));
  const std::size_t n = fs.size();

  std::vector<StateId> prog(n);
  for (std::size_t j = 0; j < n; ++j) prog[j] = b.add_state("prog" + std::to_string(j));
  const StateId emitpre = b.add_state("emitpre");
  const StateId done = b.add_state("done");
  const StateId failsafe = b.add_state("failsafe");

  for (std::size_t j = 0; j < n; ++j) {
    // Children 1..j already failed in order; the next in-order failure
    // advances, any later child failing first disarms the gate.
    b.add_interactive(prog[j], fs[j], j + 1 == n ? emitpre : prog[j + 1]);
    for (std::size_t l = j + 1; l < n; ++l) b.add_interactive(prog[j], fs[l], failsafe);
    for (std::size_t l = 0; l < j; ++l) b.add_interactive(prog[j], fs[l], prog[j]);
  }
  b.add_interactive(emitpre, fail, done);
  for (const Action f : fs) b.add_interactive(emitpre, f, emitpre);
  for (const Action f : fs) b.add_interactive(done, f, done);
  for (const Action f : fs) b.add_interactive(failsafe, f, failsafe);
  b.set_initial(prog[0]);
  return Leaf{b.build(), {emitpre, done}};
}

/// SPARE gate: tracks the current holder, the set of failed children and a
/// pending activation.  States are generated on demand from the packed
/// (mode, index, failed-set) encoding.
Leaf lower_spare(const CheckedDft& d, std::uint32_t i,
                 const std::shared_ptr<ActionTable>& actions) {
  const Element& e = d.ast.elements[i];
  const std::vector<std::uint32_t>& kids = d.children[i];
  const std::size_t m = kids.size();
  if (m > 40) {
    throw ModelError("lower_dft: spare gate '" + e.name + "' has more than 40 children");
  }
  ImcBuilder b(actions);
  const Action fail = b.intern(fail_signal(d.ast, i));
  std::vector<Action> fs(m);
  std::vector<Action> act(m);
  for (std::size_t j = 0; j < m; ++j) fs[j] = b.intern(fail_signal(d.ast, kids[j]));
  for (std::size_t j = 1; j < m; ++j) act[j] = b.intern("a." + d.ast.elements[kids[j]].name);

  enum : std::uint64_t { kNormal = 0, kActivating = 1, kEmitPre = 2, kDone = 3 };
  const auto encode = [](std::uint64_t mode, std::uint64_t idx, std::uint64_t mask) {
    return mode << 56 | idx << 48 | mask;
  };
  std::unordered_map<std::uint64_t, StateId> ids;
  std::deque<std::uint64_t> frontier;
  const auto state = [&](std::uint64_t key) {
    const auto [it, inserted] = ids.emplace(key, StateId{});
    if (inserted) {
      const std::uint64_t mode = key >> 56;
      const std::uint64_t idx = (key >> 48) & 0xff;
      const std::uint64_t mask = key & ((std::uint64_t{1} << 48) - 1);
      std::string name(mode == kNormal      ? "hold"
                       : mode == kActivating ? "act"
                       : mode == kEmitPre    ? "emitpre"
                                             : "done");
      if (mode == kNormal || mode == kActivating) {
        name += std::to_string(idx);
        name += '/';
        name += std::to_string(mask);
      }
      it->second = b.add_state(std::move(name));
      frontier.push_back(key);
    }
    return it->second;
  };
  // Smallest non-failed spare, or the gate's failure when none is left.
  const auto after_failure = [&](std::uint64_t mask) {
    for (std::size_t j = 1; j < m; ++j) {
      if ((mask & (std::uint64_t{1} << j)) == 0) return encode(kActivating, j, mask);
    }
    return encode(kEmitPre, 0, 0);
  };

  const StateId initial = state(encode(kNormal, 0, 0));
  b.set_initial(initial);
  std::vector<StateId> failed_states;
  while (!frontier.empty()) {
    const std::uint64_t key = frontier.front();
    frontier.pop_front();
    const std::uint64_t mode = key >> 56;
    const std::uint64_t idx = (key >> 48) & 0xff;
    const std::uint64_t mask = key & ((std::uint64_t{1} << 48) - 1);
    const StateId from = ids.at(key);
    switch (mode) {
      case kNormal:
        for (std::size_t j = 0; j < m; ++j) {
          const std::uint64_t bit = std::uint64_t{1} << j;
          if (j == idx) {
            b.add_interactive(from, fs[j], state(after_failure(mask | bit)));
          } else if ((mask & bit) == 0) {
            // A dormant (or already-replaced) child fails on the side.
            b.add_interactive(from, fs[j], state(encode(kNormal, idx, mask | bit)));
          } else {
            b.add_interactive(from, fs[j], from);  // input-enabled, cannot recur
          }
        }
        break;
      case kActivating:
        b.add_interactive(from, act[idx], state(encode(kNormal, idx, mask)));
        for (std::size_t j = 0; j < m; ++j) {
          const std::uint64_t bit = std::uint64_t{1} << j;
          if (j == idx) {
            // The candidate itself fails before the activation lands.
            b.add_interactive(from, fs[j], state(after_failure(mask | bit)));
          } else if ((mask & bit) == 0) {
            b.add_interactive(from, fs[j], state(encode(kActivating, idx, mask | bit)));
          } else {
            b.add_interactive(from, fs[j], from);
          }
        }
        break;
      case kEmitPre:
        failed_states.push_back(from);
        b.add_interactive(from, fail, state(encode(kDone, 0, 0)));
        for (std::size_t j = 0; j < m; ++j) b.add_interactive(from, fs[j], from);
        break;
      case kDone:
        failed_states.push_back(from);
        for (std::size_t j = 0; j < m; ++j) b.add_interactive(from, fs[j], from);
        break;
    }
  }
  return Leaf{b.build(), std::move(failed_states)};
}

/// FDEP: once the trigger fires, force the dependents one at a time (in
/// declaration order, but interleaved with everything else — the
/// forwarding order across concurrent signals is scheduler-resolved).
Leaf lower_fdep(const CheckedDft& d, std::uint32_t i,
                const std::shared_ptr<ActionTable>& actions) {
  const Element& e = d.ast.elements[i];
  ImcBuilder b(actions);
  const std::vector<std::uint32_t>& kids = d.children[i];
  const Action trigger = b.intern(fail_signal(d.ast, kids[0]));
  std::vector<Action> kill;
  for (std::size_t j = 1; j < kids.size(); ++j) {
    kill.push_back(b.intern("k." + e.name + "." + d.ast.elements[kids[j]].name));
  }

  const StateId idle = b.add_state("idle");
  std::vector<StateId> killing(kill.size());
  for (std::size_t j = 0; j < kill.size(); ++j) killing[j] = b.add_state("kill" + std::to_string(j));
  const StateId done = b.add_state("done");

  b.add_interactive(idle, trigger, killing.empty() ? done : killing[0]);
  for (std::size_t j = 0; j < kill.size(); ++j) {
    b.add_interactive(killing[j], kill[j], j + 1 == kill.size() ? done : killing[j + 1]);
    b.add_interactive(killing[j], trigger, killing[j]);
  }
  b.add_interactive(done, trigger, done);
  b.set_initial(idle);
  // An fdep never fails itself; it is also never the top element (sema).
  return Leaf{b.build(), {}};
}

Leaf lower_element(const CheckedDft& d, std::uint32_t i,
                   const std::shared_ptr<ActionTable>& actions) {
  const Element& e = d.ast.elements[i];
  switch (e.kind) {
    case ElementKind::BasicEvent: return lower_basic_event(d, i, actions);
    case ElementKind::And:
      return lower_vot(d, i, static_cast<std::uint32_t>(d.children[i].size()), actions);
    case ElementKind::Or: return lower_vot(d, i, 1, actions);
    case ElementKind::Vot: return lower_vot(d, i, e.vot_k, actions);
    case ElementKind::Pand: return lower_pand(d, i, actions);
    case ElementKind::Spare: return lower_spare(d, i, actions);
    case ElementKind::Fdep: return lower_fdep(d, i, actions);
  }
  throw ModelError("lower_dft: unknown element kind");
}

}  // namespace

lang::BuiltModel lower_dft(const CheckedDft& dft, const LowerOptions& options) {
  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) span.emplace(options.telemetry->span("dft_lower"));

  const auto actions = std::make_shared<ActionTable>();
  std::vector<Leaf> leaves;
  leaves.reserve(dft.ast.elements.size());
  for (std::uint32_t i = 0; i < dft.ast.elements.size(); ++i) {
    leaves.push_back(lower_element(dft, i, actions));
  }

  // Left-associated chain with sync sets = alphabet(leaf) intersected with
  // the union of all earlier alphabets: the standard encoding of CSP
  // multiway synchronization, so a fail signal joins every leaf that
  // mentions it.
  std::unordered_set<Action> seen;
  std::optional<CompositionExpr> expr;
  for (Leaf& leaf : leaves) {
    const std::vector<Action> alphabet = leaf.imc.visible_alphabet();
    if (!expr) {
      expr.emplace(CompositionExpr::leaf(std::move(leaf.imc)));
    } else {
      std::unordered_set<Action> sync;
      for (const Action a : alphabet) {
        if (seen.count(a) != 0) sync.insert(a);
      }
      expr.emplace(CompositionExpr::parallel(std::move(*expr), std::move(sync),
                                             CompositionExpr::leaf(std::move(leaf.imc))));
    }
    seen.insert(alphabet.begin(), alphabet.end());
  }
  expr.emplace(CompositionExpr::hide_all(std::move(*expr)));

  std::vector<std::vector<StateId>> tuples;
  ExploreOptions explore;
  explore.urgent = true;
  explore.record_names = options.record_names;
  explore.max_states = options.max_states;
  explore.record_tuples = &tuples;
  explore.guard = options.guard;
  explore.telemetry = options.telemetry;

  lang::BuiltModel built;
  built.actions = expr->action_table();
  built.num_leaves = expr->num_leaves();
  built.system = expr->explore(explore);

  // Backstop: the construction pads every basic-event state to exit rate
  // lambda and keeps gates interactive, so the closed view must be uniform
  // at E = sum of lambdas.
  const auto uniform = built.system.uniform_rate(UniformityView::Closed, 1e-6);
  if (!uniform) {
    throw UniformityError("lower_dft: composed system violates closed-view uniformity "
                          "(lowering bug — please report)");
  }
  built.uniform_rate = *uniform;

  // The "failed" proposition: the top element's leaf sits in a failed
  // state.  Transferred exactly via the explorer's leaf tuples.
  const Leaf& top = leaves[dft.top];
  // leaves[*].imc was moved into the expression; failed_states survive.
  std::vector<bool> top_failed;
  for (const StateId s : top.failed_states) {
    if (top_failed.size() <= s) top_failed.resize(s + 1, false);
    top_failed[s] = true;
  }
  std::vector<bool> mask(built.system.num_states(), false);
  for (std::size_t cs = 0; cs < built.system.num_states(); ++cs) {
    const StateId leaf_state = tuples[cs][dft.top];
    mask[cs] = leaf_state < top_failed.size() && top_failed[leaf_state];
  }
  built.prop_names = {"failed"};
  built.prop_masks = {std::move(mask)};

  if (span) {
    span->metric("elements", static_cast<double>(dft.ast.elements.size()));
    span->metric("basic_events", static_cast<double>(dft.num_basic_events));
    span->metric("product_states", static_cast<double>(built.system.num_states()));
    span->metric("uniform_rate", built.uniform_rate);
  }
  return built;
}

}  // namespace unicon::dft
