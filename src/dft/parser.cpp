#include "dft/parser.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace unicon::dft {

namespace {

struct Token {
  enum class Kind : std::uint8_t { Name, Number, Vot, Equals, Semicolon, End };

  Kind kind = Kind::End;
  SourceLoc loc;
  std::string text;        // Name: the (unquoted) name; Number/Vot: raw text
  bool quoted = false;     // Name only: written as "..."
  double number = 0.0;     // Number only
  std::uint32_t vot_k = 0, vot_n = 0;  // Vot only
};

[[noreturn]] void fail(Diagnostic::Category category, SourceLoc loc, std::string message,
                       const std::string& file) {
  throw LangError(Diagnostic{category, loc, std::move(message)}, file);
}

class Lexer {
 public:
  Lexer(const std::string& source, const std::string& file) : src_(source), file_(file) {}

  Token next() {
    skip_trivia();
    Token t;
    t.loc = loc_;
    if (pos_ >= src_.size()) return t;
    const char c = src_[pos_];
    if (c == ';') {
      t.kind = Token::Kind::Semicolon;
      advance();
      return t;
    }
    if (c == '=') {
      t.kind = Token::Kind::Equals;
      advance();
      return t;
    }
    if (c == '"') return quoted_name(t);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return bare_name(t);
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' || c == '+') {
      return number_or_vot(t);
    }
    fail(Diagnostic::Category::Lex, t.loc, std::string("unexpected character '") + c + "'", file_);
  }

 private:
  void advance() {
    if (src_[pos_] == '\n') {
      ++loc_.line;
      loc_.col = 1;
    } else {
      ++loc_.col;
    }
    ++pos_;
  }

  void skip_trivia() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') advance();
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        const SourceLoc open = loc_;
        advance();
        advance();
        while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) advance();
        if (pos_ + 1 >= src_.size()) {
          fail(Diagnostic::Category::Lex, open, "unterminated /* comment", file_);
        }
        advance();
        advance();
      } else {
        break;
      }
    }
  }

  Token quoted_name(Token t) {
    advance();  // opening quote
    t.kind = Token::Kind::Name;
    t.quoted = true;
    while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
      t.text += src_[pos_];
      advance();
    }
    if (pos_ >= src_.size() || src_[pos_] != '"') {
      fail(Diagnostic::Category::Lex, t.loc, "unterminated quoted name", file_);
    }
    advance();  // closing quote
    if (t.text.empty()) {
      fail(Diagnostic::Category::Lex, t.loc, "empty quoted name", file_);
    }
    return t;
  }

  Token bare_name(Token t) {
    t.kind = Token::Kind::Name;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') break;
      t.text += c;
      advance();
    }
    return t;
  }

  /// A token starting with a digit is either a number (1, 0.5, 1e-3) or a
  /// voting gate type (2of3).  Scan the maximal run of characters either
  /// could contain, then decide by shape.
  Token number_or_vot(Token t) {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      const bool exp_sign = (c == '+' || c == '-') && !t.text.empty() &&
                            (t.text.back() == 'e' || t.text.back() == 'E');
      const bool leading_sign = (c == '+' || c == '-') && t.text.empty();
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' && !exp_sign && !leading_sign) {
        break;
      }
      t.text += c;
      advance();
    }
    // k-of-n shape: digits "of" digits.
    const std::size_t of = t.text.find("of");
    if (of != std::string::npos && of > 0) {
      bool digits = true;
      for (std::size_t i = 0; i < t.text.size(); ++i) {
        if (i == of || i == of + 1) continue;
        if (!std::isdigit(static_cast<unsigned char>(t.text[i]))) digits = false;
      }
      if (digits && of + 2 < t.text.size()) {
        t.kind = Token::Kind::Vot;
        t.vot_k = static_cast<std::uint32_t>(std::strtoul(t.text.c_str(), nullptr, 10));
        t.vot_n = static_cast<std::uint32_t>(std::strtoul(t.text.c_str() + of + 2, nullptr, 10));
        return t;
      }
    }
    char* end = nullptr;
    t.number = std::strtod(t.text.c_str(), &end);
    if (end == nullptr || *end != '\0' || t.text.empty()) {
      fail(Diagnostic::Category::Lex, t.loc, "malformed number '" + t.text + "'", file_);
    }
    t.kind = Token::Kind::Number;
    return t;
  }

  const std::string& src_;
  const std::string& file_;
  std::size_t pos_ = 0;
  SourceLoc loc_;
};

class Parser {
 public:
  Parser(const std::string& source, const std::string& file) : lexer_(source, file), file_(file) {
    tok_ = lexer_.next();
  }

  Dft parse() {
    Dft dft;
    // toplevel "name";
    if (!is_keyword("toplevel")) {
      fail(Diagnostic::Category::Parse, tok_.loc, "expected 'toplevel' declaration first", file_);
    }
    eat();
    dft.toplevel_loc = tok_.loc;
    dft.toplevel = expect_name("toplevel element name");
    expect_semicolon();
    while (tok_.kind != Token::Kind::End) {
      if (is_keyword("toplevel")) {
        fail(Diagnostic::Category::Parse, tok_.loc, "duplicate 'toplevel' declaration", file_);
      }
      dft.elements.push_back(parse_element());
    }
    return dft;
  }

 private:
  void eat() { tok_ = lexer_.next(); }

  /// Keywords are contextual and never quoted: `"and"` is a name.
  bool is_keyword(const char* kw) const {
    return tok_.kind == Token::Kind::Name && !tok_.quoted && tok_.text == kw;
  }

  std::string expect_name(const char* what) {
    if (tok_.kind != Token::Kind::Name) {
      fail(Diagnostic::Category::Parse, tok_.loc, std::string("expected ") + what, file_);
    }
    std::string name = tok_.text;
    eat();
    return name;
  }

  void expect_semicolon() {
    if (tok_.kind != Token::Kind::Semicolon) {
      fail(Diagnostic::Category::Parse, tok_.loc, "expected ';'", file_);
    }
    eat();
  }

  Element parse_element() {
    Element e;
    e.loc = tok_.loc;
    e.name = expect_name("element name");
    if (tok_.kind == Token::Kind::Vot) {
      e.kind = ElementKind::Vot;
      if (tok_.vot_k == 0 || tok_.vot_k > tok_.vot_n) {
        fail(Diagnostic::Category::Parse, tok_.loc,
             "voting threshold of '" + tok_.text + "' must satisfy 1 <= k <= n", file_);
      }
      e.vot_k = tok_.vot_k;
      const std::uint32_t n = tok_.vot_n;
      const SourceLoc vot_loc = tok_.loc;
      eat();
      parse_children(e);
      if (e.children.size() != n) {
        fail(Diagnostic::Category::Parse, vot_loc,
             "voting gate '" + e.name + "' declares " + std::to_string(n) + " inputs but lists " +
                 std::to_string(e.children.size()),
             file_);
      }
    } else if (is_keyword("and") || is_keyword("or") || is_keyword("pand") || is_keyword("wsp") ||
               is_keyword("csp") || is_keyword("hsp") || is_keyword("fdep")) {
      if (is_keyword("and")) e.kind = ElementKind::And;
      if (is_keyword("or")) e.kind = ElementKind::Or;
      if (is_keyword("pand")) e.kind = ElementKind::Pand;
      if (is_keyword("fdep")) e.kind = ElementKind::Fdep;
      if (is_keyword("wsp") || is_keyword("csp") || is_keyword("hsp")) {
        e.kind = ElementKind::Spare;
        e.spare = is_keyword("csp")   ? SpareKind::Cold
                  : is_keyword("hsp") ? SpareKind::Hot
                                      : SpareKind::Warm;
      }
      eat();
      parse_children(e);
    } else if (is_keyword("lambda") || is_keyword("dorm")) {
      e.kind = ElementKind::BasicEvent;
      parse_attributes(e);
    } else {
      fail(Diagnostic::Category::Parse, tok_.loc,
           "expected gate type (and, or, pand, wsp, csp, hsp, fdep, k-of-n) or basic-event "
           "attribute (lambda=, dorm=) after element name '" +
               e.name + "'",
           file_);
    }
    expect_semicolon();
    return e;
  }

  void parse_children(Element& e) {
    while (tok_.kind == Token::Kind::Name) {
      e.children.push_back(tok_.text);
      eat();
    }
    if (e.children.empty()) {
      fail(Diagnostic::Category::Parse, tok_.loc, "gate '" + e.name + "' lists no inputs", file_);
    }
  }

  void parse_attributes(Element& e) {
    while (is_keyword("lambda") || is_keyword("dorm")) {
      const bool is_lambda = tok_.text == "lambda";
      const SourceLoc attr_loc = tok_.loc;
      if (is_lambda && e.has_lambda) {
        fail(Diagnostic::Category::Parse, attr_loc, "duplicate lambda on '" + e.name + "'", file_);
      }
      if (!is_lambda && e.has_dorm) {
        fail(Diagnostic::Category::Parse, attr_loc, "duplicate dorm on '" + e.name + "'", file_);
      }
      eat();
      if (tok_.kind != Token::Kind::Equals) {
        fail(Diagnostic::Category::Parse, tok_.loc, "expected '=' after attribute name", file_);
      }
      eat();
      if (tok_.kind != Token::Kind::Number) {
        fail(Diagnostic::Category::Parse, tok_.loc, "expected a number", file_);
      }
      if (is_lambda) {
        e.lambda = tok_.number;
        e.has_lambda = true;
      } else {
        e.dorm = tok_.number;
        e.has_dorm = true;
      }
      eat();
    }
  }

  Lexer lexer_;
  const std::string& file_;
  Token tok_;
};

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

const char* element_kind_name(ElementKind k) {
  switch (k) {
    case ElementKind::BasicEvent: return "basic event";
    case ElementKind::And: return "and";
    case ElementKind::Or: return "or";
    case ElementKind::Vot: return "vot";
    case ElementKind::Pand: return "pand";
    case ElementKind::Spare: return "spare";
    case ElementKind::Fdep: return "fdep";
  }
  return "?";
}

Dft parse_dft(const std::string& source, const std::string& file) {
  return Parser(source, file).parse();
}

std::string to_galileo(const Dft& dft) {
  std::string out = "toplevel \"" + dft.toplevel + "\";\n";
  for (const Element& e : dft.elements) {
    out += '"';
    out += e.name;
    out += '"';
    switch (e.kind) {
      case ElementKind::BasicEvent:
        if (e.has_lambda) {
          out += " lambda=";
          append_number(out, e.lambda);
        }
        if (e.has_dorm) {
          out += " dorm=";
          append_number(out, e.dorm);
        }
        break;
      case ElementKind::And: out += " and"; break;
      case ElementKind::Or: out += " or"; break;
      case ElementKind::Vot:
        out += ' ';
        out += std::to_string(e.vot_k);
        out += "of";
        out += std::to_string(e.children.size());
        break;
      case ElementKind::Pand: out += " pand"; break;
      case ElementKind::Spare:
        out += e.spare == SpareKind::Cold ? " csp" : e.spare == SpareKind::Hot ? " hsp" : " wsp";
        break;
      case ElementKind::Fdep: out += " fdep"; break;
    }
    for (const std::string& c : e.children) {
      out += " \"";
      out += c;
      out += '"';
    }
    out += ";\n";
  }
  return out;
}

}  // namespace unicon::dft
