// Well-formedness analysis of parsed dynamic fault trees.
//
// check_dft resolves child names, rejects ill-formed trees with
// line:column diagnostics (category Semantic) and precomputes everything
// the lowering and the brute-force oracle need: per-basic-event effective
// dormancy, spare-child roles, fail-signal listeners, and the uniform rate
// E = sum of all basic-event lambdas the composed system will carry by
// construction.
//
// Enforced rules (the malformed-input test table in tests/dft_test.cpp
// exercises each):
//   - element names unique; toplevel declared; all children declared
//   - the child graph (including FDEP trigger/dependent edges) is acyclic
//   - basic events: lambda required, finite and > 0; dorm in [0, 1];
//     dorm only on spare children (csp requires dorm absent or 0, hsp
//     absent or 1, wsp requires an explicit dorm)
//   - gates: no duplicate children; vot arity from the k-of-n type checked
//     in the parser; spare gates have >= 2 children, all basic events;
//     non-primary spares are exclusively owned (no other parent, no other
//     spare gate) and not the toplevel; primaries must be basic events and
//     must not be spares of another gate
//   - fdep: >= 2 children (trigger + dependents); dependents are basic
//     events; an fdep is never a child of a gate and never the toplevel
//   - every element is connected to the toplevel (an fdep counts as
//     connected when one of its dependents is, and then pulls in its
//     trigger)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dft/ast.hpp"

namespace unicon::dft {

constexpr std::uint32_t kNoElement = static_cast<std::uint32_t>(-1);

struct CheckedDft {
  Dft ast;
  /// Index of the toplevel element in ast.elements.
  std::uint32_t top = 0;
  /// Resolved children per element (parallel to ast.elements).
  std::vector<std::vector<std::uint32_t>> children;
  /// Gates listening to each element's fail signal (excluding fdeps, which
  /// listen to their trigger only and are listed in fdep_listeners).
  std::vector<std::vector<std::uint32_t>> parents;
  /// Fdeps triggered by each element's fail signal.
  std::vector<std::vector<std::uint32_t>> fdep_listeners;
  /// Fdeps forcing each basic event (the kill edges targeting it).
  std::vector<std::vector<std::uint32_t>> killers;
  /// Basic events only: starts dormant (it is a non-primary spare)?
  std::vector<bool> spare_child;
  /// Basic events only: failure-rate factor while dormant (resolved from
  /// the gate flavour: csp 0, hsp 1, wsp the declared dorm).
  std::vector<double> effective_dorm;
  /// Owning spare gate of each non-primary spare (kNoElement otherwise).
  std::vector<std::uint32_t> spare_owner;

  std::uint32_t num_basic_events = 0;
  /// Sum of all basic-event lambdas: the closed-view uniform rate of the
  /// composed system, by construction.
  double total_rate = 0.0;
};

/// Resolves and checks @p dft; throws LangError on the first violation.
CheckedDft check_dft(Dft dft, const std::string& file = "<dft>");

/// parse_dft + check_dft.
CheckedDft parse_and_check_dft(const std::string& source, const std::string& file = "<dft>");

}  // namespace unicon::dft
