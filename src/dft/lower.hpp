// Compositional IMC semantics of dynamic fault trees.
//
// Every element lowers to one small IMC leaf; the tree's behaviour is the
// CSP-style n-ary parallel composition of the leaves (imc/compose.hpp)
// with all signals hidden at the root, explored under the closed-system
// urgency assumption.  Three families of signal actions wire the leaves:
//
//   f.<elem>       fail signal: emitted once by <elem> when it fails,
//                  multiway-synchronized with every gate listening to it
//                  (its parents and fdep triggers)
//   a.<spare>      activation: pairwise between a spare gate and the spare
//                  it promotes to active duty
//   k.<fdep>.<be>  kill: pairwise between an fdep and one dependent
//                  (per-edge names keep two fdeps over one BE independent)
//
// Listeners are input-enabled (self-loops for signals that are irrelevant
// in a state), so a signal is never blocked and the closed composition is
// deadlock-free.  Genuine nondeterminism remains where the DFT literature
// places it — the interleaving order of simultaneously pending fail
// signals (PAND orderings) and fdep forwarding — and is resolved by the
// scheduler: sup/inf over schedulers (Objective::Maximize/Minimize) bound
// the unreliability from both sides.
//
// Uniformity by construction: a basic event with rate lambda carries total
// Markov exit rate exactly lambda in *every* state (dormancy and
// absorption are padded with Markov self-loops, the elapse/uniformization
// pattern of Def. 4), and gates are purely interactive, so every stable
// composite state has exit rate E = sum of all lambdas — the composed
// system is uniform at E without a global uniformization pass.
//
// The result is a lang::BuiltModel with the single proposition "failed"
// (top element has failed), so bisimulation minimization, the Sec. 4.1
// transformation and Algorithm 1 apply unchanged:
//     unreliability(t) = Pr(reach "failed" within t).
#pragma once

#include <cstddef>

#include "dft/sema.hpp"
#include "lang/build.hpp"
#include "support/run_guard.hpp"

namespace unicon {
class Telemetry;
}

namespace unicon::dft {

struct LowerOptions {
  /// Record human-readable "(s0,s1,...)" composite state names.
  bool record_names = false;
  /// Abort with ModelError when the product exceeds this many states.
  std::size_t max_states = static_cast<std::size_t>(-1);
  /// Optional execution control (checked per explored state; BudgetError).
  RunGuard* guard = nullptr;
  /// Optional observability: opens a "dft_lower" span with the
  /// exploration's "compose" span as its child.
  Telemetry* telemetry = nullptr;
};

/// Lowers a checked DFT to its closed uniform IMC.  Throws UniformityError
/// if the explored system violates closed-view uniformity (a backstop; the
/// construction guarantees it).
lang::BuiltModel lower_dft(const CheckedDft& dft, const LowerOptions& options = {});

}  // namespace unicon::dft
