// Typed IR of Galileo dynamic fault trees.
//
// A DFT is a flat list of named elements: exponential basic events
// (lambda, optional dormancy factor) and gates (AND, OR, VOT(k/n), PAND,
// SPARE in warm/cold/hot flavours, FDEP) wiring them into a DAG under one
// distinguished toplevel element.  The parser fills this IR verbatim
// (children by name, declaration order preserved); resolution and
// well-formedness live in sema.hpp, the compositional IMC semantics in
// lower.hpp.  Diagnostics reuse the lang frontend's SourceLoc/LangError
// machinery so `unicon_check dft` reports file:line:col like the UNI
// frontend does.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/diagnostics.hpp"

namespace unicon::dft {

using lang::Diagnostic;
using lang::LangError;
using lang::SourceLoc;

enum class ElementKind : std::uint8_t { BasicEvent, And, Or, Vot, Pand, Spare, Fdep };

const char* element_kind_name(ElementKind k);

/// The three Galileo spare flavours share one lowering; they differ only in
/// the dormancy factor applied to a spare while it is not activated
/// (csp: 0, hsp: 1, wsp: the spare's own dorm attribute).
enum class SpareKind : std::uint8_t { Warm, Cold, Hot };

struct Element {
  std::string name;
  SourceLoc loc;
  ElementKind kind = ElementKind::BasicEvent;

  /// Gates: children by name in declaration order.  For Fdep, children[0]
  /// is the trigger and the remainder are the dependent basic events.
  std::vector<std::string> children;

  /// Vot only: the threshold k of a k-of-n gate (AND and OR parse as
  /// dedicated kinds, not as n-of-n / 1-of-n).
  std::uint32_t vot_k = 0;

  /// Spare only.
  SpareKind spare = SpareKind::Warm;

  /// Basic events: exponential failure rate and dormancy factor in [0, 1]
  /// (failure rate while dormant = dorm * lambda).
  double lambda = 0.0;
  double dorm = 1.0;
  bool has_lambda = false;
  bool has_dorm = false;

  bool is_gate() const { return kind != ElementKind::BasicEvent; }
};

struct Dft {
  std::string toplevel;
  SourceLoc toplevel_loc;
  /// Declaration order; this is also the leaf order of the lowering.
  std::vector<Element> elements;
};

}  // namespace unicon::dft
